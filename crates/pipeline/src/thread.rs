//! Per-thread context: trace source, predictors, rename map, ROB, LSQ
//! occupancy, and fetch-policy telemetry counters.

use crate::slot::{FrontEndInst, Slot, SlotState};
use sim_frontend::{MissPredictor, ThreadPredictor};
use sim_model::{ArchReg, Inst, PhysReg, SeqNum, ThreadId};
use sim_workload::{InstSource, TraceGenerator};
use std::collections::VecDeque;

/// Maximum instructions buffered between fetch and dispatch.
pub const FETCH_QUEUE_CAP: usize = 16;

/// All per-thread state of the SMT core, generic over the instruction
/// source feeding it (the synthetic [`TraceGenerator`] by default).
///
/// Cloning deep-copies the slab, free list and queues verbatim, so ROB
/// references held elsewhere as `(slab index, ftag)` pairs stay valid
/// across a snapshot/restore: indices point at the same slots and ftags
/// are monotonic per thread, never reused.
#[derive(Debug, Clone)]
pub struct ThreadCtx<S = TraceGenerator> {
    /// This context's identifier.
    pub id: ThreadId,
    /// Correct-path instruction source.
    pub gen: S,
    /// Per-thread branch prediction (Table 1).
    pub predictor: ThreadPredictor,
    /// PDG's L1-miss predictor.
    pub miss_pred: MissPredictor,
    /// PSTALL's L2-miss predictor (trained on load L2 outcomes).
    pub l2_miss_pred: MissPredictor,
    /// Slab holding the payload of every in-flight slot. Entries are reused
    /// via `free_slots`; a vacant entry has `ftag == u64::MAX`. External
    /// references (IQ entries, completion events) carry a slab index and
    /// revalidate it against the expected ftag, so a reused entry can never
    /// be mistaken for its previous occupant (per-thread ftags never repeat).
    pub slab: Vec<Slot>,
    /// Vacant slab indices (LIFO).
    free_slots: Vec<u32>,
    /// Reorder buffer: slab indices in program order (oldest at the front).
    pub rob: VecDeque<u32>,
    /// Slab indices of in-flight stores in program order — the subset
    /// `load_store_dep` scans, so loads check tens of stores instead of a
    /// few hundred ROB slots.
    store_idxs: VecDeque<u32>,
    /// Front-end pipe between fetch and dispatch.
    pub fetch_queue: VecDeque<FrontEndInst>,
    /// Correct-path instructions squashed by FLUSH awaiting refetch.
    pub replay: VecDeque<Inst>,
    /// Rename map: architectural register index (0..64) → physical register.
    /// Integer registers map into the integer pool, FP into the FP pool.
    pub rename: [PhysReg; 64],
    /// LSQ occupancy (entries are tracked inside ROB slots).
    pub lsq_used: u32,
    /// Fetch blocked until this cycle (I-cache miss, redirect penalty).
    pub fetch_stall_until: u64,
    /// The earliest unresolved mispredicted branch's ftag; while set, fetch
    /// synthesizes wrong-path micro-ops.
    pub pending_mispredict: Option<u64>,
    /// Next fetch-order tag.
    pub next_ftag: u64,
    /// Sequence counter for synthesized wrong-path micro-ops.
    pub wrong_seq: u64,
    /// Committed instruction count.
    pub committed: u64,
    /// ICOUNT counter: fetched but not yet issued (or completed, for NOPs).
    pub icount: u32,
    /// Outstanding detected DL1 load misses.
    pub outstanding_l1: u32,
    /// Outstanding detected L2 load misses.
    pub outstanding_l2: u32,
    /// Outstanding predicted L1 load misses (PDG).
    pub predicted_l1: u32,
    /// Outstanding predicted L2 load misses (PSTALL).
    pub predicted_l2: u32,
    /// IQ entries currently held by this thread (for static partitioning).
    pub iq_used: u32,
    /// The I-cache line currently held in the fetch buffer: once a line is
    /// fetched (or its miss fill has been started), fetch proceeds from the
    /// buffer without re-probing the IL1 — this is what real fetch buffers
    /// do, and it prevents pathological cross-thread eviction livelock.
    pub fetch_line: Option<u64>,
    /// Squashed-instruction count (diagnostic).
    pub squashed: u64,
    /// Wrong-path micro-ops fetched (diagnostic).
    pub wrong_path_fetched: u64,
}

impl<S: InstSource> ThreadCtx<S> {
    /// Construct a context; `rename_init` supplies the initial physical
    /// mapping for each of the 64 architectural registers.
    pub fn new(
        id: ThreadId,
        gen: S,
        predictor: ThreadPredictor,
        rename_init: [PhysReg; 64],
    ) -> ThreadCtx<S> {
        ThreadCtx {
            id,
            gen,
            predictor,
            miss_pred: MissPredictor::default(),
            l2_miss_pred: MissPredictor::default(),
            slab: Vec::new(),
            free_slots: Vec::new(),
            rob: VecDeque::new(),
            store_idxs: VecDeque::new(),
            fetch_queue: VecDeque::new(),
            replay: VecDeque::new(),
            rename: rename_init,
            lsq_used: 0,
            fetch_stall_until: 0,
            pending_mispredict: None,
            next_ftag: 0,
            wrong_seq: 1 << 62,
            committed: 0,
            icount: 0,
            outstanding_l1: 0,
            outstanding_l2: 0,
            predicted_l1: 0,
            predicted_l2: 0,
            iq_used: 0,
            fetch_line: None,
            squashed: 0,
            wrong_path_fetched: 0,
        }
    }

    /// Allocate the next fetch tag.
    pub fn alloc_ftag(&mut self) -> u64 {
        let t = self.next_ftag;
        self.next_ftag += 1;
        t
    }

    /// Next wrong-path sequence number.
    pub fn alloc_wrong_seq(&mut self) -> SeqNum {
        let s = SeqNum(self.wrong_seq);
        self.wrong_seq += 1;
        s
    }

    /// Current physical mapping of `reg`.
    pub fn mapping(&self, reg: ArchReg) -> PhysReg {
        self.rename[reg.index()]
    }

    /// Append a freshly dispatched slot to the ROB tail, reusing a vacant
    /// slab entry if one exists. Returns the slot's slab index.
    pub fn push_slot(&mut self, slot: Slot) -> u32 {
        let is_store = slot.inst.op == sim_model::OpClass::Store;
        let idx = match self.free_slots.pop() {
            Some(i) => {
                self.slab[i as usize] = slot;
                i
            }
            None => {
                self.slab.push(slot);
                (self.slab.len() - 1) as u32
            }
        };
        self.rob.push_back(idx);
        if is_store {
            self.store_idxs.push_back(idx);
        }
        idx
    }

    /// Pop the oldest slot (commit). Returns the slot by value; its slab
    /// entry becomes vacant.
    pub fn pop_front_slot(&mut self) -> Option<Slot> {
        let idx = self.rob.pop_front()?;
        let slot = self.slab[idx as usize];
        if slot.inst.op == sim_model::OpClass::Store {
            debug_assert_eq!(self.store_idxs.front(), Some(&idx));
            self.store_idxs.pop_front();
        }
        self.slab[idx as usize].ftag = u64::MAX;
        self.free_slots.push(idx);
        Some(slot)
    }

    /// Pop the youngest slot (squash). Returns the slot by value; its slab
    /// entry becomes vacant.
    pub fn pop_back_slot(&mut self) -> Option<Slot> {
        let idx = self.rob.pop_back()?;
        let slot = self.slab[idx as usize];
        if slot.inst.op == sim_model::OpClass::Store {
            debug_assert_eq!(self.store_idxs.back(), Some(&idx));
            self.store_idxs.pop_back();
        }
        self.slab[idx as usize].ftag = u64::MAX;
        self.free_slots.push(idx);
        Some(slot)
    }

    /// The oldest in-flight slot, if any.
    pub fn front_slot(&self) -> Option<&Slot> {
        self.rob.front().map(|&i| &self.slab[i as usize])
    }

    /// The youngest in-flight slot, if any.
    pub fn back_slot(&self) -> Option<&Slot> {
        self.rob.back().map(|&i| &self.slab[i as usize])
    }

    /// Iterate the in-flight slots oldest-first.
    pub fn rob_slots(&self) -> impl Iterator<Item = &Slot> + '_ {
        self.rob.iter().map(|&i| &self.slab[i as usize])
    }

    /// Resolve a slab index carried by an IQ entry or completion event,
    /// revalidating against the expected ftag. Returns `None` if the slot
    /// was squashed (and possibly reused) since the reference was taken.
    #[inline]
    pub fn slot_at_mut(&mut self, idx: u32, ftag: u64) -> Option<&mut Slot> {
        let slot = &mut self.slab[idx as usize];
        (slot.ftag == ftag).then_some(slot)
    }

    /// Find a slot by fetch tag (binary search: ROB ftags are strictly
    /// increasing by construction). Hot paths use [`ThreadCtx::slot_at_mut`]
    /// with a slab index instead.
    pub fn slot(&self, ftag: u64) -> Option<&Slot> {
        let i = self
            .rob
            .partition_point(|&s| self.slab[s as usize].ftag < ftag);
        self.rob
            .get(i)
            .map(|&s| &self.slab[s as usize])
            .filter(|s| s.ftag == ftag)
    }

    /// Find a slot by fetch tag, mutably.
    pub fn slot_mut(&mut self, ftag: u64) -> Option<&mut Slot> {
        let i = self
            .rob
            .partition_point(|&s| self.slab[s as usize].ftag < ftag);
        match self.rob.get(i) {
            Some(&s) if self.slab[s as usize].ftag == ftag => Some(&mut self.slab[s as usize]),
            _ => None,
        }
    }

    /// Recompute the ICOUNT counter after a squash: instructions in the
    /// front-end pipe plus un-issued ROB occupants (NOPs complete at
    /// dispatch and never count).
    pub fn recompute_icount(&mut self) {
        let waiting = self
            .rob_slots()
            .filter(|s| s.state == SlotState::Waiting && s.inst.op != sim_model::OpClass::Nop)
            .count();
        self.icount = (self.fetch_queue.len() + waiting) as u32;
    }

    /// Whether an older, un-issued store to the same 8-byte word blocks
    /// `load_ftag`, or whether an issued/completed one can forward to it.
    ///
    /// Returns `MemDep::Blocked` when the load must wait, `MemDep::Forward`
    /// when an older store provides the data, `MemDep::None` otherwise.
    pub fn load_store_dep(&self, load_ftag: u64, addr: u64) -> MemDep {
        let word = addr & !7;
        // Scan youngest-to-oldest so the *nearest* older store wins; only
        // stores are examined (`store_idxs` tracks them in program order).
        for &si in self.store_idxs.iter().rev() {
            let s = &self.slab[si as usize];
            if s.ftag >= load_ftag {
                continue;
            }
            if let Some(m) = s.inst.mem {
                if m.addr & !7 == word {
                    return if s.state == SlotState::Waiting {
                        MemDep::Blocked
                    } else {
                        MemDep::Forward
                    };
                }
            }
        }
        MemDep::None
    }
}

/// Memory-dependence outcome for a load against the thread's older stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemDep {
    /// No older store to the same word.
    None,
    /// Older store with data available: store-to-load forwarding.
    Forward,
    /// Older store not yet executed: the load must wait.
    Blocked,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_frontend::PredictorConfigExt;
    use sim_model::{MachineConfig, MemRef, OpClass};
    use sim_workload::profile;

    fn ctx() -> ThreadCtx {
        let cfg = MachineConfig::ispass07_baseline();
        let rename = std::array::from_fn(|i| PhysReg(i as u16));
        ThreadCtx::new(
            ThreadId(0),
            TraceGenerator::new(profile("bzip2").unwrap(), 0),
            cfg.predictor.build(),
            rename,
        )
    }

    fn store_slot(ftag: u64, addr: u64, state: SlotState) -> Slot {
        let mut inst = Inst::nop(0x100, SeqNum(ftag));
        inst.op = OpClass::Store;
        inst.mem = Some(MemRef::new(addr, 8));
        inst.srcs = [Some(ArchReg::int(1)), Some(ArchReg::int(2))];
        let mut s = Slot::new(
            FrontEndInst {
                inst,
                ftag,
                ready_at: 0,
                predicted_miss: false,
                predicted_l2_miss: false,
            },
            0,
        );
        s.state = state;
        s
    }

    #[test]
    fn ftag_allocation_is_monotonic() {
        let mut c = ctx();
        assert_eq!(c.alloc_ftag(), 0);
        assert_eq!(c.alloc_ftag(), 1);
        let s1 = c.alloc_wrong_seq();
        let s2 = c.alloc_wrong_seq();
        assert!(s2 > s1);
    }

    #[test]
    fn load_store_dep_detects_blocking_and_forwarding() {
        let mut c = ctx();
        c.push_slot(store_slot(1, 0x1000, SlotState::Waiting));
        assert_eq!(c.load_store_dep(5, 0x1000), MemDep::Blocked);
        assert_eq!(c.load_store_dep(5, 0x1004), MemDep::Blocked, "same word");
        assert_eq!(c.load_store_dep(5, 0x1008), MemDep::None, "next word");
        let i0 = c.rob[0] as usize;
        c.slab[i0].state = SlotState::Done;
        assert_eq!(c.load_store_dep(5, 0x1000), MemDep::Forward);
        // Stores younger than the load never match.
        assert_eq!(c.load_store_dep(1, 0x1000), MemDep::None);
    }

    #[test]
    fn nearest_older_store_wins() {
        let mut c = ctx();
        c.push_slot(store_slot(1, 0x1000, SlotState::Done));
        c.push_slot(store_slot(2, 0x1000, SlotState::Waiting));
        assert_eq!(c.load_store_dep(5, 0x1000), MemDep::Blocked);
    }

    #[test]
    fn recompute_icount_counts_frontend_and_waiting() {
        let mut c = ctx();
        let mut inst = Inst::nop(0, SeqNum(0));
        inst.op = OpClass::IntAlu;
        let fe = FrontEndInst {
            inst,
            ftag: 0,
            ready_at: 5,
            predicted_miss: false,
            predicted_l2_miss: false,
        };
        c.fetch_queue.push_back(fe);
        let mut slot = Slot::new(FrontEndInst { ftag: 1, ..fe }, 0);
        slot.state = SlotState::Waiting;
        c.push_slot(slot);
        let mut nop_slot = Slot::new(
            FrontEndInst {
                inst: Inst::nop(4, SeqNum(2)),
                ftag: 2,
                ready_at: 5,
                predicted_miss: false,
                predicted_l2_miss: false,
            },
            0,
        );
        nop_slot.state = SlotState::Waiting;
        c.push_slot(nop_slot);
        c.recompute_icount();
        assert_eq!(c.icount, 2, "1 front-end + 1 waiting ALU; NOP excluded");
    }
}
