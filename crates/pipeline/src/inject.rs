//! Statistical fault-injection hooks: single-bit fault descriptions, the
//! immediate landing outcome of a strike, and the retired-instruction
//! records the campaign runner diffs against a golden run.
//!
//! The ACE analysis (the paper's method) *infers* vulnerability from
//! lifetime accounting; these hooks let `sim-inject` *measure* it by
//! flipping one bit mid-simulation and watching what retires. The core
//! models corruption symbolically: a struck value is marked *tainted*
//! rather than numerically altered, and taint propagates along true
//! dataflow — through register reads, loads of poisoned cache words, and
//! stores — exactly the paths the ACE model reasons about. Fields whose
//! corruption the simulator cannot meaningfully propagate (opcodes,
//! scheduling status, LSQ control) are conservatively classified as
//! *detected* at injection time, the hardware-detectable-error (DUE)
//! proxy.

use sim_model::OpClass;

/// The microarchitectural array a fault strikes. Entry/bit layouts follow
/// `avf_core::budgets`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// Issue-queue entry (64-bit layout: opcode, source tags, dest tag,
    /// immediate, status).
    Iq,
    /// Reorder-buffer entry (80-bit layout: PC, dest arch/phys, old phys,
    /// status, opcode, branch state). Entries are numbered
    /// `thread * rob_entries_per_thread + index`.
    Rob,
    /// Load/store queue *tag* entry (48-bit layout: address + control),
    /// numbered `thread * lsq_entries_per_thread + index`.
    LsqTag,
    /// A physical register (64 data bits), numbered across the integer
    /// pool then the floating-point pool.
    RegFile,
    /// A functional-unit latch (two 64-bit operand latches + 16 control
    /// bits), numbered over the machine's functional units.
    Fu,
    /// A DL1 data word: entry is the physical line (`set * assoc + way`),
    /// bit selects the 64-bit word and bit within it.
    Dl1Data,
    /// A DL1 tag entry (address tag, valid, dirty, LRU bits).
    Dl1Tag,
    /// A data-TLB entry (any of its 56 bits: the entry is lost).
    Dtlb,
    /// An instruction-TLB entry.
    Itlb,
}

impl FaultTarget {
    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultTarget::Iq => "IQ",
            FaultTarget::Rob => "ROB",
            FaultTarget::LsqTag => "LSQ_tag",
            FaultTarget::RegFile => "RegFile",
            FaultTarget::Fu => "FU",
            FaultTarget::Dl1Data => "DL1_data",
            FaultTarget::Dl1Tag => "DL1_tag",
            FaultTarget::Dtlb => "DTLB",
            FaultTarget::Itlb => "ITLB",
        }
    }
}

/// One single-bit fault: flip `bit` of physical `entry` in `target` at the
/// moment [`SmtCore::inject_fault`](crate::SmtCore::inject_fault) is
/// called.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The struck array.
    pub target: FaultTarget,
    /// Physical entry index (uniform over the array, occupied or not).
    pub entry: u64,
    /// Bit within the entry's budgeted layout.
    pub bit: u64,
}

/// What a strike did at the instant of injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Landing {
    /// The struck entry held no instruction / no valid state: the fault is
    /// masked by emptiness.
    Empty,
    /// The entry was occupied but the struck field is architecturally idle
    /// for it (e.g. the branch field of a non-branch, a dead instruction's
    /// PC): masked by construction, no need to run further.
    Benign,
    /// State was corrupted; the outcome depends on propagation — the trial
    /// must run to completion and be diffed against the golden run.
    Injected,
    /// The strike hit control state whose corruption a real pipeline traps
    /// on or wedges over (opcode, scheduling status, LSQ control): counted
    /// as a detectable error without running further.
    Detected,
}

/// Read-only prediction of what [`inject_fault`] would do, computed by
/// [`probe_fault`] without mutating the core. The lane-batch engine uses
/// it to keep metadata-only strikes (taint/poison, which never feed back
/// into timing) riding a shared golden follower, and to fork anything
/// else out to the scalar path.
///
/// The classification is conservative by construction: any strike whose
/// injection mutates state the lane engine cannot track exactly against
/// the shared follower — renamed source tags, pre-issue effective
/// addresses, pre-issue load PCs — probes as [`FaultProbe::Diverges`]
/// even when the mutation would turn out to be timing-neutral, because
/// the fork (a scalar trial) is always correct and only the *cheap*
/// cases must be predicted exactly.
///
/// [`inject_fault`]: crate::SmtCore::inject_fault
/// [`probe_fault`]: crate::SmtCore::probe_fault
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProbe {
    /// The strike would land [`Landing::Empty`].
    Empty,
    /// The strike would land [`Landing::Benign`].
    Benign,
    /// The strike would land [`Landing::Detected`].
    Detected,
    /// The strike would land [`Landing::Injected`] by setting exactly one
    /// slot's `tainted` flag — pure metadata, no timing feedback. The slot
    /// is identified by `(thread, slab index)`, the stable reference the
    /// lane engine's taint masks are keyed on.
    TaintSlot {
        /// Owning thread.
        thread: u8,
        /// Slab index of the struck slot in that thread's ROB slab.
        slab: u32,
    },
    /// The strike would land [`Landing::Injected`] by poisoning exactly
    /// one physical register — pure metadata, no timing feedback.
    PoisonReg {
        /// Floating-point pool (`false` = integer pool).
        fp: bool,
        /// Register index within its pool.
        reg: u16,
    },
    /// The strike would land [`Landing::Injected`] on resident DL1 state
    /// the lane engine can track without ever forking. `Some(w)`: word
    /// `w` is poisoned — demand reads taint their consumers, overwrites
    /// heal, and a dirty eviction moves the watch to the word's memory
    /// address (the scalar's `stale_words` mirror). `None`: a clean-tag
    /// strike that merely invalidates the line — timing-only, no
    /// architectural residue, so the lane rides bare and resolves Masked
    /// at its first convergence check.
    CacheResident {
        /// Flat physical DL1 line index (`set * assoc + way`).
        line: u32,
        /// `Some(w)`: a data strike poisoning word `w` (residual
        /// corruption until healed). `None`: a clean-tag strike that
        /// invalidates the line (timing-only — no architectural residue).
        word: Option<u8>,
    },
    /// The strike would land [`Landing::Injected`] by invalidating a
    /// *dirty* DL1 line, silently discarding its only good copy (every
    /// word becomes a stale memory address). The struck machine is golden
    /// minus one valid line: its timing stays identical exactly until
    /// something touches the line or fills into its set, so the lane
    /// engine rides it as permanently-residual (Latent) and forks on the
    /// first touch.
    CacheDirtyLine {
        /// Flat physical DL1 line index of the lost line.
        line: u32,
    },
    /// The strike would land [`Landing::Injected`] by invalidating one
    /// valid TLB entry — timing-only (translation is identity-mapped and
    /// a refill restores the entry exactly), so the lane rides bare and
    /// resolves Masked at its first convergence check without watching
    /// anything.
    TlbResident {
        /// Instruction TLB (`false` = data TLB).
        itlb: bool,
        /// Flat entry index (`set * assoc + way`).
        entry: u32,
    },
    /// The strike would mutate state the lane engine cannot mask
    /// per-lane (renamed source tags, pre-issue effective addresses,
    /// pre-issue load PCs, anything under FLUSH replay): the lane must
    /// fork to a scalar core and inject for real.
    Diverges,
}

/// One retired instruction as recorded by the commit log: the fields an
/// architectural-output diff can observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetiredInst {
    /// Committing thread.
    pub thread: u8,
    /// Instruction PC.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Effective address for memory ops (0 otherwise).
    pub mem_addr: u64,
    /// The retired result was corrupt (taint reached commit) — a silent
    /// data corruption even if the visible fields match.
    pub tainted: bool,
}

/// Per-core fault bookkeeping: which physical registers hold corrupt
/// values, whether a detectable fault fired, and the optional commit log.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    /// Integer physical registers holding corrupt values.
    pub(crate) int_poison: Vec<bool>,
    /// Floating-point physical registers holding corrupt values.
    pub(crate) fp_poison: Vec<bool>,
    /// A control-state strike classified as detectable landed.
    pub(crate) detected: bool,
    /// Instructions that retired with corrupt results.
    pub(crate) corrupt_retired: u64,
    /// Retired-instruction stream, recorded when enabled.
    pub(crate) commit_log: Option<Vec<RetiredInst>>,
}

impl FaultState {
    pub(crate) fn new(int_regs: u32, fp_regs: u32) -> FaultState {
        FaultState {
            int_poison: vec![false; int_regs as usize],
            fp_poison: vec![false; fp_regs as usize],
            detected: false,
            corrupt_retired: 0,
            commit_log: None,
        }
    }

    /// The poison table for one register class.
    pub(crate) fn poison(&mut self, fp: bool) -> &mut Vec<bool> {
        if fp {
            &mut self.fp_poison
        } else {
            &mut self.int_poison
        }
    }

    /// Any register still holding a corrupt, unconsumed value?
    pub(crate) fn any_poison(&self) -> bool {
        self.int_poison.iter().chain(&self.fp_poison).any(|&p| p)
    }
}
