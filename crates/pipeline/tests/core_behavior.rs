//! Behavioral tests of the SMT core: progress, squash/replay correctness,
//! policy effects, and the Section 5 extension features.

use avf_core::StructureId;
use sim_model::{FetchPolicyKind, MachineConfig};
use sim_pipeline::{SimBudget, SimResult, SmtCore};
use sim_workload::{profile, TraceGenerator};

fn gens(programs: &[&str]) -> Vec<TraceGenerator> {
    programs
        .iter()
        .enumerate()
        .map(|(i, p)| TraceGenerator::new(profile(p).expect("known benchmark"), i as u64 + 1))
        .collect()
}

fn run(cfg: MachineConfig, programs: &[&str], n: u64) -> SimResult {
    let mut core = SmtCore::new(cfg, gens(programs));
    core.run(SimBudget::total_instructions(n).with_warmup(n / 2))
}

#[test]
fn superscalar_cpu_workload_reaches_sane_ipc() {
    // Gshare needs a few hundred thousand instructions to converge (it is
    // warming 2K counters × history contexts), as on real hardware.
    let mut core = SmtCore::new(MachineConfig::ispass07_baseline(), gens(&["bzip2"]));
    let r = core.run(SimBudget::total_instructions(100_000).with_warmup(300_000));
    assert!(
        r.ipc() > 1.2 && r.ipc() < 8.0,
        "bzip2 ST IPC out of range: {}",
        r.ipc()
    );
    assert!(r.threads[0].mispredict_rate < 0.25);
    assert!(r.dl1_miss_rate < 0.25);
}

#[test]
fn memory_workload_is_memory_bound() {
    let r = run(MachineConfig::ispass07_baseline(), &["mcf"], 8_000);
    assert!(r.ipc() < 0.5, "mcf should crawl: IPC {}", r.ipc());
    assert!(r.l2_miss_rate > 0.2, "mcf should miss the L2 often");
}

#[test]
fn smt_throughput_exceeds_best_single_thread() {
    let progs = ["bzip2", "eon", "gcc", "perlbmk"];
    let smt = run(
        MachineConfig::ispass07_baseline().with_contexts(4),
        &progs,
        40_000,
    );
    let best_st = progs
        .iter()
        .map(|p| run(MachineConfig::ispass07_baseline(), &[p], 10_000).ipc())
        .fold(0.0_f64, f64::max);
    assert!(smt.ipc() > best_st);
}

#[test]
fn wrong_path_work_exists_but_never_commits() {
    let r = run(MachineConfig::ispass07_baseline(), &["gcc"], 20_000);
    // gcc mispredicts, so wrong-path micro-ops must have been fetched and
    // squashed...
    assert!(r.threads[0].wrong_path_fetched > 0);
    assert!(r.threads[0].squashed > 0);
    // ...and the committed count matches the budget exactly as measured.
    assert!(r.report.total_committed() >= 20_000);
}

#[test]
fn flush_policy_squashes_and_replays_correctly() {
    let cfg = MachineConfig::ispass07_baseline()
        .with_contexts(2)
        .with_fetch_policy(FetchPolicyKind::Flush);
    let r = run(cfg, &["mcf", "swim"], 10_000);
    // FLUSH squashes massively on memory-bound threads...
    assert!(
        r.threads.iter().map(|t| t.squashed).sum::<u64>() > 1_000,
        "FLUSH should squash plenty of work"
    );
    // ...yet the run still commits its full measured budget (replay works).
    assert!(r.report.total_committed() >= 10_000);
}

#[test]
fn flush_from_offender_variant_also_makes_progress() {
    let mut cfg = MachineConfig::ispass07_baseline()
        .with_contexts(2)
        .with_fetch_policy(FetchPolicyKind::Flush);
    cfg.flush_from_offender = true;
    let r = run(cfg, &["mcf", "swim"], 8_000);
    assert!(r.report.total_committed() >= 8_000);
}

#[test]
fn pstall_extension_runs_and_gates_earlier_than_stall() {
    let progs = ["mcf", "equake", "vpr", "swim"];
    let stall = run(
        MachineConfig::ispass07_baseline()
            .with_contexts(4)
            .with_fetch_policy(FetchPolicyKind::Stall),
        &progs,
        20_000,
    );
    let pstall = run(
        MachineConfig::ispass07_baseline()
            .with_contexts(4)
            .with_fetch_policy(FetchPolicyKind::PredictiveStall),
        &progs,
        20_000,
    );
    assert!(pstall.report.total_committed() >= 20_000);
    // Gating earlier keeps more long-latency ACE bits out of the pipeline:
    // PSTALL's IQ AVF should not exceed STALL's by much.
    let s = stall.report.structure(StructureId::Iq).avf;
    let p = pstall.report.structure(StructureId::Iq).avf;
    assert!(
        p < s * 1.15,
        "PSTALL IQ AVF ({p:.3}) should be at or below STALL's ({s:.3})"
    );
}

#[test]
fn static_iq_partitioning_caps_per_thread_occupancy() {
    let progs = ["mcf", "bzip2"];
    let mut cfg = MachineConfig::ispass07_baseline().with_contexts(2);
    cfg.iq_partitioned = true;
    let part = run(cfg, &progs, 16_000);
    let shared = run(
        MachineConfig::ispass07_baseline().with_contexts(2),
        &progs,
        16_000,
    );
    // With partitioning, the memory-bound thread cannot clog the whole IQ:
    // its IQ AVF contribution drops relative to free sharing.
    let mcf_part = part.report.structure(StructureId::Iq).per_thread[0];
    let mcf_shared = shared.report.structure(StructureId::Iq).per_thread[0];
    assert!(
        mcf_part < mcf_shared,
        "partitioning should cap mcf's IQ occupancy: {mcf_part:.3} !< {mcf_shared:.3}"
    );
    assert!(part.report.total_committed() >= 16_000);
}

#[test]
fn raft_extension_reduces_iq_vulnerability_on_mixed_workloads() {
    // Needs warm predictors: the quota-throttling signal is noise until
    // the MEM threads' IQ residency pattern stabilizes.
    let progs = ["bzip2", "eon", "mcf", "vpr"];
    let budget = SimBudget::total_instructions(60_000).with_warmup(60_000);
    let run_policy = |policy| {
        let cfg = MachineConfig::ispass07_baseline()
            .with_contexts(4)
            .with_fetch_policy(policy);
        let mut core = SmtCore::new(cfg, gens(&progs));
        core.run(budget)
    };
    let icount = run_policy(FetchPolicyKind::Icount);
    let raft = run_policy(FetchPolicyKind::VulnerabilityAware);
    let a = icount.report.structure(StructureId::Iq).avf;
    let b = raft.report.structure(StructureId::Iq).avf;
    assert!(
        b < a,
        "RAFT should lower IQ AVF vs ICOUNT on a MIX workload: {b:.3} !< {a:.3}"
    );
    assert!(
        raft.ipc() > icount.ipc() * 0.9,
        "RAFT should not sacrifice throughput: {:.2} vs {:.2}",
        raft.ipc(),
        icount.ipc()
    );
    assert!(raft.report.total_committed() >= 60_000);
}

#[test]
fn phase_recording_produces_consistent_series() {
    let cfg = MachineConfig::ispass07_baseline();
    let mut core = SmtCore::new(cfg, gens(&["bzip2"]));
    core.enable_phase_recording(1_000);
    let _ = core.run(SimBudget::total_instructions(20_000));
    let points = core.take_phases().expect("recording was enabled");
    assert!(points.len() >= 5);
    for w in points.windows(2) {
        assert_eq!(w[0].end_cycle, w[1].start_cycle, "intervals are contiguous");
    }
    // Deferred banking attributes a residency to the interval where it
    // ends, so a single interval can exceed 1.0; values must still be
    // nonnegative and bounded by residency physics.
    for p in &points {
        for &v in &p.avf {
            assert!((0.0..50.0).contains(&v), "phase AVF out of range: {v}");
        }
    }
    // Recording is take-once.
    assert!(core.take_phases().is_none());
}

#[test]
fn eight_context_machine_runs_every_policy() {
    let progs = [
        "mcf", "twolf", "swim", "lucas", "equake", "applu", "vpr", "mgrid",
    ];
    for policy in FetchPolicyKind::STUDIED
        .into_iter()
        .chain(FetchPolicyKind::EXTENSIONS)
    {
        let cfg = MachineConfig::ispass07_baseline()
            .with_contexts(8)
            .with_fetch_policy(policy);
        let r = run(cfg, &progs, 16_000);
        assert!(
            r.report.total_committed() >= 16_000,
            "{policy:?} failed to make progress"
        );
    }
}

#[test]
fn recorded_traces_drive_the_core_through_the_inst_source_trait() {
    use sim_workload::RecordedTrace;
    let mut g1 = TraceGenerator::new(profile("bzip2").unwrap(), 1);
    let mut g2 = TraceGenerator::new(profile("twolf").unwrap(), 2);
    let traces = vec![
        RecordedTrace::record(&mut g1, 5_000),
        RecordedTrace::record(&mut g2, 5_000),
    ];
    let cfg = MachineConfig::ispass07_baseline().with_contexts(2);
    let mut core: SmtCore<RecordedTrace> = SmtCore::new(cfg, traces);
    let r = core.run(SimBudget::total_instructions(20_000).with_warmup(10_000));
    assert!(r.report.total_committed() >= 20_000);
    assert!(r.ipc() > 0.1);
    assert_eq!(r.threads[0].name, "bzip2");
    assert_eq!(r.threads[1].name, "twolf");
}

#[test]
fn replaying_a_recording_is_deterministic() {
    use sim_workload::RecordedTrace;
    let run = || {
        let mut g = TraceGenerator::new(profile("eon").unwrap(), 4);
        let trace = RecordedTrace::record(&mut g, 3_000);
        let cfg = MachineConfig::ispass07_baseline();
        let mut core: SmtCore<RecordedTrace> = SmtCore::new(cfg, vec![trace]);
        core.run(SimBudget::total_instructions(9_000))
    };
    let a = run();
    let b = run();
    assert_eq!(a.report, b.report);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn step_and_introspection_api() {
    let cfg = MachineConfig::ispass07_baseline();
    let mut core = SmtCore::new(cfg, gens(&["eon"]));
    assert_eq!(core.cycle(), 0);
    for _ in 0..500 {
        core.step();
    }
    assert_eq!(core.cycle(), 500);
    assert!(core.total_committed() > 0, "500 cycles should commit work");
    assert_eq!(core.config().contexts, 1);
}

#[test]
#[should_panic(expected = "need exactly one trace per context")]
fn mismatched_thread_count_is_rejected() {
    let cfg = MachineConfig::ispass07_baseline().with_contexts(2);
    let _ = SmtCore::new(cfg, gens(&["bzip2"]));
}

#[test]
#[should_panic(expected = "physical register pools too small")]
fn undersized_register_pool_is_rejected() {
    let mut cfg = MachineConfig::ispass07_baseline().with_contexts(8);
    cfg.int_phys_regs = 200; // < 8 * 32 + 8
    let _ = SmtCore::new(cfg, gens(&["bzip2"; 8]));
}
