//! Regression test: steady-state `SmtCore::step()` performs zero heap
//! allocations.
//!
//! A counting shim wraps the system allocator for this test binary. The
//! core is stepped long enough for every reusable buffer (scratch vectors,
//! ROB slab, event heap, trace-generator tables) to reach its high-water
//! capacity, then a measurement window of further steps must not allocate
//! at all. Deallocations are not counted: freeing is legal (nothing on the
//! hot path frees either, but the invariant being pinned is "no allocator
//! pressure in the cycle loop").

use sim_model::{FetchPolicyKind, MachineConfig};
use sim_pipeline::SmtCore;
use sim_workload::{profile, TraceGenerator};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers entirely to the system allocator; the counter is a relaxed
// atomic with no allocator interaction.
static TRAP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        if TRAP.swap(false, Ordering::Relaxed) {
            eprintln!(
                "ALLOC {} bytes at:\n{}",
                layout.size(),
                std::backtrace::Backtrace::force_capture()
            );
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        if TRAP.swap(false, Ordering::Relaxed) {
            eprintln!(
                "REALLOC {} -> {} bytes at:\n{}",
                layout.size(),
                new_size,
                std::backtrace::Backtrace::force_capture()
            );
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn steady_state_allocs(
    policy: FetchPolicyKind,
    programs: &[&str],
    warmup: u64,
    window: u64,
    traced: bool,
) -> u64 {
    let cfg = MachineConfig::ispass07_baseline()
        .with_contexts(programs.len())
        .with_fetch_policy(policy);
    let gens = programs
        .iter()
        .enumerate()
        .map(|(i, p)| TraceGenerator::new(profile(p).expect("known benchmark"), i as u64 + 1))
        .collect();
    let mut core = SmtCore::new(cfg, gens);
    #[cfg(feature = "trace")]
    if traced {
        // A small ring that wraps inside the window: both the fill and the
        // overwrite paths of the sink must be allocation-free.
        core.enable_tracing(sim_pipeline::TraceConfig {
            capacity: 1024,
            sample_interval: 64,
        });
    }
    #[cfg(not(feature = "trace"))]
    let _ = traced;
    for _ in 0..warmup {
        core.step();
    }
    let before = allocations();
    TRAP.store(true, Ordering::Relaxed);
    for _ in 0..window {
        core.step();
    }
    TRAP.store(false, Ordering::Relaxed);
    allocations() - before
}

// A single test function: the allocation counter is process-global, so two
// scenarios must not run on concurrent harness threads (one test's warmup
// would be charged to the other's measurement window).
#[test]
fn steady_state_step_is_allocation_free() {
    let icount = steady_state_allocs(
        FetchPolicyKind::Icount,
        &["bzip2", "mcf", "eon", "gcc"],
        50_000,
        20_000,
        false,
    );
    assert_eq!(
        icount, 0,
        "ICOUNT step() allocated {icount} times in steady state"
    );

    // FLUSH exercises the squash/replay scratch buffers every L2 miss.
    let flush = steady_state_allocs(
        FetchPolicyKind::Flush,
        &["mcf", "twolf"],
        80_000,
        20_000,
        false,
    );
    assert_eq!(
        flush, 0,
        "FLUSH step() allocated {flush} times in steady state"
    );

    // With a live ring sink the hot loop must still not allocate: the ring
    // and its counters are fully preallocated (events land by value).
    let traced = steady_state_allocs(
        FetchPolicyKind::Icount,
        &["bzip2", "mcf", "eon", "gcc"],
        50_000,
        20_000,
        true,
    );
    assert_eq!(
        traced, 0,
        "traced step() allocated {traced} times in steady state"
    );
}
