//! The fork-correctness invariant of the lane-batch engine, separate
//! from the end-to-end campaign equivalence suite: a core forked out of a
//! `LaneBatch` at an arbitrary cycle must be byte-equal to a never-batched
//! scalar core cloned from the same checkpoint and stepped to the same
//! cycle — even when the batch carries armed lanes, and regardless of the
//! bound sequences either side stepped with. This is what makes lazy
//! divergence forking exact: the fork inherits nothing from the batching.

use sim_model::rng::splitmix64;
use sim_model::{FetchPolicyKind, MachineConfig};
use sim_pipeline::{Fault, FaultProbe, FaultTarget, LaneBatch, SmtCore};
use sim_workload::{profile, TraceGenerator};

fn smt2() -> SmtCore {
    let cfg = MachineConfig::ispass07_baseline()
        .with_contexts(2)
        .with_fetch_policy(FetchPolicyKind::Icount);
    let gens = ["bzip2", "mcf"]
        .iter()
        .enumerate()
        .map(|(i, p)| TraceGenerator::new(profile(p).expect("known benchmark"), i as u64 + 1))
        .collect();
    SmtCore::new(cfg, gens)
}

/// Step a scalar core to `target` the way the trial runner does.
fn step_to(core: &mut SmtCore, target: u64) {
    while core.cycle() < target {
        core.step_fast_bounded(target);
    }
}

/// Find a metadata probe (taint or poison) on the checkpoint so the batch
/// has a genuinely armed lane when it forks.
fn find_metadata_probe(core: &SmtCore) -> FaultProbe {
    for target in [FaultTarget::RegFile, FaultTarget::Rob, FaultTarget::Iq] {
        for entry in 0..64u64 {
            for bit in [0u64, 20, 40] {
                let probe = core.probe_fault(&Fault { target, entry, bit });
                if matches!(
                    probe,
                    FaultProbe::TaintSlot { .. } | FaultProbe::PoisonReg { .. }
                ) {
                    return probe;
                }
            }
        }
    }
    panic!("no metadata strike found on a warm machine");
}

#[test]
fn forked_core_is_byte_equal_to_a_never_batched_scalar_run() {
    // Checkpoint a messy mid-flight machine, then fork lanes at
    // pseudo-random cycles and hold each fork to a scalar clone of the
    // same checkpoint stepped to the same cycle.
    let mut golden = smt2();
    step_to(&mut golden, 4_000);
    let checkpoint = golden.clone();

    let mut seed = 0x1A7EF0_u64;
    for trial in 0..6 {
        let fork_at = checkpoint.cycle() + 1 + splitmix64(&mut seed) % 5_000;

        // Batched side: two lanes ride the follower (one armed with a real
        // metadata strike so the event feed is on), then lane 1 "diverges"
        // at fork_at.
        let mut batch = LaneBatch::new(checkpoint.clone(), 2);
        batch.activate(0, find_metadata_probe(batch.follower()));
        batch.step_bounded(fork_at, u64::MAX);
        assert_eq!(batch.cycle(), fork_at, "trial {trial}");
        let mut forked = batch.fork();

        // Scalar side: never batched, never instrumented.
        let mut scalar = checkpoint.clone();
        step_to(&mut scalar, fork_at);

        assert_eq!(
            forked.state_digest(),
            scalar.state_digest(),
            "fork at cycle {fork_at} diverged from the scalar clone (trial {trial})"
        );
        assert_eq!(forked.dump_state(), scalar.dump_state(), "trial {trial}");

        // And the fork keeps stepping bit-identically afterwards — with
        // *different* bound sequences, per the fast-forward invariant.
        let further = fork_at + 3_000;
        step_to(&mut forked, further);
        while scalar.cycle() < further {
            let bound = (scalar.cycle() + 1 + splitmix64(&mut seed) % 700).min(further);
            scalar.step_fast_bounded(bound);
        }
        assert_eq!(forked.cycle(), scalar.cycle(), "trial {trial}");
        assert_eq!(
            forked.total_committed(),
            scalar.total_committed(),
            "trial {trial}"
        );
        assert_eq!(
            forked.state_digest(),
            scalar.state_digest(),
            "post-fork stepping diverged (trial {trial})"
        );
    }
}

#[test]
fn armed_event_feed_never_perturbs_the_follower() {
    // Instrumentation neutrality: a follower with every lane armed must
    // trace the exact same history as an untouched clone.
    let mut golden = smt2();
    step_to(&mut golden, 4_000);

    let mut batch = LaneBatch::new(golden.clone(), 8);
    let probe = find_metadata_probe(batch.follower());
    for lane in 0..8 {
        batch.activate(lane, probe);
    }
    let mut plain = golden.clone();

    let mut seed = 0xBEEF_u64;
    for _ in 0..5 {
        let target = batch.cycle() + 500 + splitmix64(&mut seed) % 2_000;
        batch.step_bounded(target, u64::MAX);
        step_to(&mut plain, target);
        assert_eq!(batch.cycle(), plain.cycle());
        assert_eq!(batch.total_committed(), plain.total_committed());
        assert_eq!(
            batch.follower().state_digest(),
            plain.state_digest(),
            "armed feed perturbed the follower at cycle {target}"
        );
    }
}
