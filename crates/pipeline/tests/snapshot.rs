//! Snapshot fidelity: `SmtCore` is a deep `Clone`, so a restored core
//! stepped M cycles must be bit-identical to the original stepped the
//! same M cycles — commit streams, cycle/committed counters, scheduler
//! state, and final `AvfReport`s all included.
//!
//! This property is what the checkpointed fault-injection campaigns in
//! `sim-inject` are built on: restoring a snapshot and stepping the delta
//! must be indistinguishable from having replayed from cycle 0.

use sim_model::{FetchPolicyKind, MachineConfig};
use sim_pipeline::{SimBudget, SmtCore};
use sim_workload::{profile, TraceGenerator};

fn gens(programs: &[&str]) -> Vec<TraceGenerator> {
    programs
        .iter()
        .enumerate()
        .map(|(i, p)| TraceGenerator::new(profile(p).expect("known benchmark"), i as u64 + 1))
        .collect()
}

fn smt2(policy: FetchPolicyKind) -> SmtCore {
    let cfg = MachineConfig::ispass07_baseline()
        .with_contexts(2)
        .with_fetch_policy(policy);
    SmtCore::new(cfg, gens(&["bzip2", "mcf"]))
}

#[test]
fn restored_core_replays_a_bit_identical_commit_stream() {
    // Warm the machine into a messy mid-flight state (in-flight ROB slots,
    // outstanding misses, partially-trained predictors), snapshot, then
    // advance both copies and demand identical histories.
    let mut original = smt2(FetchPolicyKind::Icount);
    for _ in 0..5_000 {
        original.step();
    }
    original.enable_commit_log();
    let mut restored = original.clone();
    for _ in 0..8_000 {
        original.step();
    }
    for _ in 0..8_000 {
        restored.step();
    }
    assert_eq!(original.cycle(), restored.cycle());
    assert_eq!(original.total_committed(), restored.total_committed());
    assert_eq!(
        original.dump_state(),
        restored.dump_state(),
        "scheduler state diverged after restore"
    );
    let a = original.take_commit_log().expect("log enabled");
    let b = restored.take_commit_log().expect("log enabled");
    assert_eq!(a.len(), b.len());
    assert_eq!(a, b, "retired streams diverged after restore");
}

#[test]
fn restored_core_produces_an_identical_avf_report() {
    // The residency trackers, open ACE intervals, and cache/TLB interval
    // timestamps must all survive the snapshot: finishing both cores after
    // the same additional work must yield equal reports (AvfReport derives
    // PartialEq, so this is an exact structural comparison).
    let mut original = smt2(FetchPolicyKind::Stall);
    for _ in 0..4_000 {
        original.step();
    }
    let mut restored = original.clone();
    let budget = SimBudget::total_instructions(6_000);
    let a = original.run(budget);
    let b = restored.run(budget);
    assert_eq!(a, b, "SimResult diverged after restore");
    assert!(a.report.total_committed() >= 6_000);
}

#[test]
fn snapshots_are_independent_after_the_split() {
    // Stepping the original must not disturb a snapshot taken earlier:
    // the clone is deep, not shared.
    let mut original = smt2(FetchPolicyKind::Flush);
    for _ in 0..3_000 {
        original.step();
    }
    let snapshot = original.clone();
    let frozen_cycle = snapshot.cycle();
    let frozen_committed = snapshot.total_committed();
    let frozen_dump = snapshot.dump_state();
    for _ in 0..2_000 {
        original.step();
    }
    assert_eq!(snapshot.cycle(), frozen_cycle);
    assert_eq!(snapshot.total_committed(), frozen_committed);
    assert_eq!(snapshot.dump_state(), frozen_dump);
    assert!(original.cycle() > frozen_cycle);
}
