//! Service-level equivalence tests, driven through the real `sim-serve`
//! binary (the same code path CI's smoke step exercises):
//!
//! * **Shard equivalence** — the same job run in-process, with 1, 2 and
//!   4 worker processes, into separate stores, publishes byte-identical
//!   result objects (trial records, summaries, and ACE report included).
//! * **Crash-resume equivalence** — a run killed after its first
//!   published chunk (`SIM_STORE_CRASH_AFTER_CHUNKS`, a `kill -9`
//!   equivalent that leaves the writer lock behind) resumes to a result
//!   byte-identical to an uninterrupted run.
//! * **fsck** — a deliberately corrupted object makes `sim-serve fsck`
//!   fail closed.

use sim_store::{encode_record, JobResultRecord, ObjectId, Store};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const EXE: &str = env!("CARGO_BIN_EXE_sim-serve");

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sim-serve-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The quick campaign every test submits: tiny but real (two targets,
/// chunk smaller than the trial count so resume has several chunks to
/// work with).
fn submit(store: &Path, extra: &[(&str, &str)], procs: usize) -> Output {
    let mut cmd = Command::new(EXE);
    cmd.args(["submit", "--store", store.to_str().unwrap()]);
    cmd.args([
        "--workload",
        "2T-MIX-A",
        "--trials",
        "4",
        "--seed",
        "9",
        "--targets",
        "iq,regfile",
        "--chunk",
        "3",
        "--workers",
        "1",
    ]);
    if procs > 1 {
        cmd.args(["--worker-procs", &procs.to_string()]);
    }
    cmd.env_remove("SIM_STORE_CRASH_AFTER_CHUNKS");
    for (k, v) in extra {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn sim-serve")
}

/// The single result record a store holds, as raw canonical bytes.
fn result_bytes(store_dir: &Path) -> Vec<u8> {
    let store = Store::open(store_dir).unwrap();
    let refs = store.refs("jobs/").unwrap();
    let results: Vec<&(String, ObjectId)> = refs
        .iter()
        .filter(|(n, _)| n.ends_with("/result"))
        .collect();
    assert_eq!(results.len(), 1, "exactly one job result in {refs:?}");
    store.get(&results[0].1).unwrap()
}

#[test]
fn sharding_does_not_change_a_single_byte() {
    let serial = fresh_dir("serial");
    let out = submit(&serial, &[], 1);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reference = result_bytes(&serial);

    for procs in [2, 4] {
        let dir = fresh_dir(&format!("procs{procs}"));
        let out = submit(&dir, &[], procs);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            result_bytes(&dir),
            reference,
            "{procs} worker processes changed the result bytes"
        );
    }
}

#[test]
fn kill_minus_nine_then_resume_is_byte_identical() {
    // Uninterrupted reference.
    let clean = fresh_dir("clean");
    let out = submit(&clean, &[], 1);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reference = result_bytes(&clean);

    // Crash after each possible number of published chunks (the job has
    // three), resume, and demand identical bytes every time.
    for crash_after in [1usize, 2] {
        let dir = fresh_dir(&format!("crash{crash_after}"));
        let out = submit(
            &dir,
            &[("SIM_STORE_CRASH_AFTER_CHUNKS", &crash_after.to_string())],
            1,
        );
        assert!(
            !out.status.success(),
            "the crash hook must kill the process"
        );
        // The kill leaves the canonical writer's lock behind; resume must
        // take it over (the recorded pid is dead) and finish the job.
        assert!(dir.join("LOCK").exists(), "abort should leave LOCK behind");
        let out = submit(&dir, &[], 1);
        assert!(
            out.status.success(),
            "resume after crash-at-{crash_after}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("{crash_after} chunks resumed")),
            "resume should reuse the published chunks: {stderr}"
        );
        assert_eq!(
            result_bytes(&dir),
            reference,
            "crash after {crash_after} chunks + resume changed the result bytes"
        );
    }
}

#[test]
fn sharded_crash_then_resume_is_byte_identical() {
    let clean = fresh_dir("shard-clean");
    let out = submit(&clean, &[], 1);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reference = result_bytes(&clean);

    let dir = fresh_dir("shard-crash");
    let out = submit(&dir, &[("SIM_STORE_CRASH_AFTER_CHUNKS", "1")], 2);
    assert!(!out.status.success(), "crash hook must kill the parent");
    let out = submit(&dir, &[], 2);
    assert!(
        out.status.success(),
        "sharded resume: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(result_bytes(&dir), reference);
}

#[test]
fn resubmitting_a_finished_job_recomputes_nothing() {
    let dir = fresh_dir("idem");
    let out = submit(&dir, &[], 1);
    assert!(out.status.success());
    let before = result_bytes(&dir);
    let out = submit(&dir, &[], 1);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("0 computed"),
        "second submission should be a pure read: {stderr}"
    );
    assert_eq!(result_bytes(&dir), before);
}

#[test]
fn fsck_fails_closed_on_a_corrupted_object() {
    let dir = fresh_dir("fsck");
    let out = submit(&dir, &[], 1);
    assert!(out.status.success());

    let fsck = |dir: &Path| {
        Command::new(EXE)
            .args(["fsck", "--store", dir.to_str().unwrap()])
            .output()
            .expect("spawn fsck")
    };
    assert!(fsck(&dir).status.success(), "healthy store must pass fsck");

    // Flip one bit in one stored object.
    let store = Store::open(&dir).unwrap();
    let (_, id) = store.refs("jobs/").unwrap().into_iter().next().unwrap();
    let hex = id.to_hex();
    let path = dir.join("objects").join(&hex[..2]).join(&hex[2..]);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let out = fsck(&dir);
    assert!(!out.status.success(), "fsck must fail on corruption");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fail closed"), "{stderr}");
}

/// Every file under `root/objects` and `root/refs`, relative path →
/// contents. The reachable universe for byte-level comparisons.
fn object_and_ref_bytes(root: &Path) -> std::collections::BTreeMap<String, Vec<u8>> {
    let mut out = std::collections::BTreeMap::new();
    for sub in ["objects", "refs"] {
        let top = root.join(sub);
        if !top.exists() {
            continue;
        }
        let mut stack = vec![top];
        while let Some(dir) = stack.pop() {
            for entry in std::fs::read_dir(&dir).unwrap() {
                let path = entry.unwrap().path();
                if path.is_dir() {
                    stack.push(path);
                } else {
                    let rel = path
                        .strip_prefix(root)
                        .unwrap()
                        .to_string_lossy()
                        .to_string();
                    out.insert(rel, std::fs::read(&path).unwrap());
                }
            }
        }
    }
    out
}

#[test]
fn gc_after_crash_and_resume_changes_no_reachable_byte() {
    let dir = fresh_dir("gc");
    let out = submit(&dir, &[("SIM_STORE_CRASH_AFTER_CHUNKS", "1")], 1);
    assert!(!out.status.success(), "crash hook must fire");
    let out = submit(&dir, &[], 1);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Plant garbage the crash could have left: a valid but unreferenced
    // object (decodes fine, reachable from no ref) and a stale tmp file.
    let doomed_path;
    {
        let store = Store::open(&dir).unwrap();
        let mut rec: JobResultRecord = sim_store::decode_record(&result_bytes(&dir)).unwrap();
        rec.job = ObjectId::of(b"some other job entirely");
        let doomed = store.put(&encode_record(&rec)).unwrap();
        let hex = doomed.to_hex();
        doomed_path = dir.join("objects").join(&hex[..2]).join(&hex[2..]);
    }
    std::fs::write(dir.join("tmp").join("stale-leftover"), b"junk").unwrap();
    assert!(doomed_path.exists());

    let mut reachable = object_and_ref_bytes(&dir);
    reachable.remove(
        &doomed_path
            .strip_prefix(&dir)
            .unwrap()
            .to_string_lossy()
            .to_string(),
    );

    let out = Command::new(EXE)
        .args(["gc", "--store", dir.to_str().unwrap()])
        .output()
        .expect("spawn gc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("1 unreferenced objects removed"),
        "{stdout}"
    );

    assert!(!doomed_path.exists(), "garbage object must be collected");
    assert!(
        !dir.join("tmp").join("stale-leftover").exists(),
        "tmp leftovers must be collected"
    );
    assert_eq!(
        object_and_ref_bytes(&dir),
        reachable,
        "gc must not change a single reachable byte"
    );

    let out = Command::new(EXE)
        .args(["fsck", "--store", dir.to_str().unwrap()])
        .output()
        .expect("spawn fsck");
    assert!(out.status.success(), "store must stay clean after gc");
}

#[test]
fn metrics_are_observability_only_and_never_reach_the_store_objects() {
    // Same job with and without metrics: identical result bytes — the
    // registry is outside the result-equality contract by construction.
    let with = fresh_dir("metrics-on");
    let out = submit(&with, &[], 1);
    assert!(out.status.success());
    let without = fresh_dir("metrics-off");
    let mut cmd = Command::new(EXE);
    cmd.args(["submit", "--store", without.to_str().unwrap()]);
    cmd.args([
        "--workload",
        "2T-MIX-A",
        "--trials",
        "4",
        "--seed",
        "9",
        "--targets",
        "iq,regfile",
        "--chunk",
        "3",
        "--workers",
        "1",
        "--no-metrics",
    ]);
    let out = cmd.output().expect("spawn sim-serve");
    assert!(out.status.success());
    assert_eq!(
        result_bytes(&with),
        result_bytes(&without),
        "metrics on/off must not change result bytes"
    );

    // The metrics-on run snapshotted under <store>/metrics/, which fsck
    // must not treat as part of the object namespace.
    let snap = with.join("metrics").join("submit.json");
    let body = std::fs::read_to_string(&snap).expect("submit writes a snapshot");
    assert!(
        body.contains("\"schema\": \"smt-avf/metrics/v1\""),
        "{body}"
    );
    assert!(body.contains("serve.jobs"), "{body}");
    assert!(body.contains("store.publish_us"), "{body}");
    assert!(
        !without.join("metrics").exists(),
        "--no-metrics must write nothing"
    );
    let out = Command::new(EXE)
        .args(["fsck", "--store", with.to_str().unwrap()])
        .output()
        .expect("spawn fsck");
    assert!(
        out.status.success(),
        "metrics snapshots must be invisible to fsck: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // And the metrics subcommand finds what submit wrote.
    let out = Command::new(EXE)
        .args(["metrics", "--store", with.to_str().unwrap()])
        .output()
        .expect("spawn metrics");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("submit.json"), "{stdout}");
    assert!(stdout.contains("serve.job_us"), "{stdout}");
}

#[test]
fn soak_quick_passes_its_slos() {
    let dir = fresh_dir("soak");
    let out = Command::new(EXE)
        .args([
            "soak",
            "--dir",
            dir.to_str().unwrap(),
            "--jobs",
            "2",
            "--crash-jobs",
            "1",
            "--worker-procs",
            "2",
            "--trials",
            "2",
            "--chunk",
            "1",
            "--seed",
            "400",
        ])
        .env_remove("SIM_STORE_CRASH_AFTER_CHUNKS")
        .output()
        .expect("spawn soak");
    assert!(
        out.status.success(),
        "soak failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"schema\": \"smt-avf/soak/v1\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"byte_identical\": true"), "{stdout}");
    assert!(stdout.contains("\"pass\": true"), "{stdout}");
    assert!(dir.join("soak-report.json").exists());
    assert!(
        dir.join("soak").join("metrics").join("soak.json").exists(),
        "soak must snapshot its metrics"
    );
}

#[test]
fn result_record_decodes_from_the_store() {
    let dir = fresh_dir("decode");
    let out = submit(&dir, &[], 1);
    assert!(out.status.success());
    let bytes = result_bytes(&dir);
    let result: JobResultRecord = sim_store::decode_record(&bytes).unwrap();
    assert_eq!(result.records.len(), 8, "4 trials x 2 targets");
    assert_eq!(result.per_target.len(), 2);
    assert_eq!(bytes, encode_record(&result), "round-trip byte identity");
}
