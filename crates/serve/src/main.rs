//! `sim-serve` — the campaign job server (DESIGN.md §5h).
//!
//! ```text
//! sim-serve submit --store DIR --workload NAME [--trials N] [--seed S]
//!                  [--worker-procs P] [--chunk N] [--scale quick|default]
//!                  [--workers W] [--checkpoints K] [--lanes L]
//!                  [--targets a,b,...] [--name LABEL]
//!                  [--enqueue QUEUE_DIR]
//! sim-serve serve  --store DIR --queue DIR [--worker-procs P] [--once]
//! sim-serve status --store DIR [--watch] [--interval-ms N]
//! sim-serve result --store DIR --job ID_PREFIX
//! sim-serve metrics --store DIR
//! sim-serve gc     --store DIR
//! sim-serve fsck   --store DIR
//! sim-serve soak   --dir DIR [--jobs N] [--crash-jobs K] ...
//! sim-serve worker             (internal: spawned by the sharding parent)
//! ```
//!
//! `submit` runs a job to completion in the foreground (resuming any
//! published chunks); with `--enqueue` it instead drops the job spec into
//! a queue directory for a long-running `serve` process to pick up.
//! Killing any of these at any point is safe: the same submission resumes
//! from the store and finishes with byte-identical results.
//!
//! Wall-clock metrics (DESIGN.md §5k) are on by default for `submit`,
//! `serve`, and `soak` (`--no-metrics` opts out) and snapshot to
//! `<store>/metrics/*.json` — a directory fsck never walks, because
//! observability is deliberately outside the result-equality contract.

mod protocol;
mod server;
mod soak;

use sim_store::{decode_record, encode_record, JobSpec, ObjectId, Store, DEFAULT_CHUNK_TRIALS};
use sim_trace::metrics;
use smt_avf::experiments::campaign::default_campaign;
use smt_avf::ExperimentScale;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> String {
    "usage: sim-serve <submit|serve|status|result|metrics|gc|fsck|soak|worker> [flags]\n\
     \n\
     submit --store DIR --workload NAME [--trials N] [--seed S] [--workers W]\n\
     \x20      [--worker-procs P] [--chunk N] [--scale quick|default]\n\
     \x20      [--checkpoints K] [--lanes L] [--targets a,b,...]\n\
     \x20      [--name LABEL] [--enqueue QUEUE_DIR] [--no-metrics]\n\
     serve  --store DIR --queue DIR [--worker-procs P] [--poll-ms N]\n\
     \x20      [--metrics-every N] [--no-metrics] [--once]\n\
     status --store DIR [--watch] [--interval-ms N]\n\
     result --store DIR --job ID_PREFIX\n\
     metrics --store DIR\n\
     gc     --store DIR\n\
     fsck   --store DIR\n\
     soak   --dir DIR [--jobs N] [--crash-jobs K] [--worker-procs P]\n\
     \x20      [--trials T] [--seed S] [--chunk C] [--workload NAME]\n\
     \x20      [--targets a,b,...] [--slo-p99-ms N] [--slo-resume-ms N]\n\
     \x20      [--report PATH]"
        .to_string()
}

struct Flags {
    values: Vec<(String, Option<String>)>,
}

impl Flags {
    /// Parse `--flag value` / bare `--flag` pairs (every flag in this CLI
    /// that takes a value takes exactly one).
    fn parse(args: Vec<String>, bare: &[&str]) -> Result<Flags, String> {
        let mut values = Vec::new();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            if !flag.starts_with("--") {
                return Err(format!("unexpected argument '{flag}' (try --help)"));
            }
            if flag == "--help" {
                return Err(usage());
            }
            if bare.contains(&flag.as_str()) {
                values.push((flag, None));
            } else {
                let v = it
                    .next()
                    .ok_or_else(|| format!("{flag} requires a value"))?;
                values.push((flag, Some(v)));
            }
        }
        Ok(Flags { values })
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, flag: &str) -> bool {
        self.values.iter().any(|(f, _)| f == flag)
    }

    fn require(&self, flag: &str) -> Result<&str, String> {
        self.get(flag).ok_or_else(|| format!("{flag} is required"))
    }

    fn parse_num<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("{flag}: {e}")),
        }
    }

    /// Reject unknown flags so typos fail loudly.
    fn check_known(&self, known: &[&str]) -> Result<(), String> {
        for (f, _) in &self.values {
            if !known.contains(&f.as_str()) {
                return Err(format!("unknown flag '{f}' (try --help)"));
            }
        }
        Ok(())
    }
}

fn parse_target(name: &str) -> Result<sim_inject::FaultTarget, String> {
    use sim_inject::FaultTarget as T;
    Ok(match name.trim().to_ascii_lowercase().as_str() {
        "iq" => T::Iq,
        "rob" => T::Rob,
        "lsq" | "lsqtag" => T::LsqTag,
        "regfile" | "reg" => T::RegFile,
        "fu" => T::Fu,
        "dl1data" => T::Dl1Data,
        "dl1tag" => T::Dl1Tag,
        "dtlb" => T::Dtlb,
        "itlb" => T::Itlb,
        other => {
            return Err(format!(
                "--targets: unknown target '{other}' \
                 (iq, rob, lsq, regfile, fu, dl1data, dl1tag, dtlb, itlb)"
            ))
        }
    })
}

fn spec_from_flags(flags: &Flags) -> Result<JobSpec, String> {
    let workload_name = flags.require("--workload")?.to_string();
    let workload = server::resolve_workload(&workload_name)?;
    let trials: usize = flags.parse_num("--trials", 50)?;
    if trials == 0 {
        return Err("--trials must be positive".to_string());
    }
    let seed: u64 = flags.parse_num("--seed", 12)?;
    let scale = match flags.get("--scale").unwrap_or("quick") {
        "quick" => ExperimentScale::quick(),
        "default" => ExperimentScale::default_scale(),
        other => return Err(format!("--scale: unknown scale '{other}'")),
    };
    let mut cfg = default_campaign(&workload, trials, seed, scale);
    let workers: usize = flags.parse_num("--workers", 0)?;
    if workers > 0 {
        cfg.workers = workers;
    }
    cfg.checkpoints = flags.parse_num("--checkpoints", cfg.checkpoints)?.max(1);
    // Execution knob only: lanes is deliberately outside the job identity
    // (the spec hashes and resumes the same for any lane count, because
    // the batched engine is proven bit-identical to the scalar path).
    cfg.lanes = flags.parse_num("--lanes", cfg.lanes)?;
    if let Some(list) = flags.get("--targets") {
        cfg.targets = list
            .split(',')
            .map(parse_target)
            .collect::<Result<Vec<_>, _>>()?;
    }
    Ok(JobSpec {
        name: flags
            .get("--name")
            .unwrap_or(&format!("{workload_name}-t{trials}-s{seed}"))
            .to_string(),
        workload: workload_name,
        cfg,
        chunk_trials: flags.parse_num("--chunk", DEFAULT_CHUNK_TRIALS)?,
    })
}

/// Render a stored result the way `validate_avf` renders a live one: the
/// per-structure ACE-vs-SFI table plus outcome tallies.
fn print_result(result: &sim_store::JobResultRecord) {
    let points: Vec<avf_core::SfiPoint> = result.per_target.iter().map(|t| t.sfi).collect();
    let rows = avf_core::compare(&result.report, &points);
    print!("{}", avf_core::render(&rows));
    let masked: u64 = result.per_target.iter().map(|t| t.masked).sum();
    let latent: u64 = result.per_target.iter().map(|t| t.latent).sum();
    let sdc: u64 = result.per_target.iter().map(|t| t.sdc).sum();
    let detected: u64 = result.per_target.iter().map(|t| t.detected).sum();
    println!("outcomes: {masked} masked, {latent} latent, {sdc} SDC, {detected} detected");
}

fn cmd_submit(flags: &Flags) -> Result<(), String> {
    flags.check_known(&[
        "--store",
        "--workload",
        "--trials",
        "--seed",
        "--workers",
        "--worker-procs",
        "--chunk",
        "--scale",
        "--checkpoints",
        "--lanes",
        "--targets",
        "--name",
        "--enqueue",
        "--no-metrics",
    ])?;
    let spec = spec_from_flags(flags)?;
    let job = spec.id();
    if let Some(queue) = flags.get("--enqueue") {
        enqueue(Path::new(queue), &spec)?;
        println!("enqueued job {} ({})", server::short(&job), spec.name);
        return Ok(());
    }
    let store = PathBuf::from(flags.require("--store")?);
    let worker_procs: usize = flags.parse_num("--worker-procs", 0)?;
    metrics::set_enabled(!flags.has("--no-metrics"));
    eprintln!(
        "sim-serve: job {} ({}): workload {}, {} trials x {} targets, chunk {}, {}",
        server::short(&job),
        spec.name,
        spec.workload,
        spec.cfg.trials_per_structure,
        spec.cfg.targets.len(),
        spec.chunk_trials,
        match worker_procs {
            0 | 1 => "in-process".to_string(),
            n => format!("{n} worker processes"),
        },
    );
    let report = server::run_job(&store, &spec, worker_procs)?;
    eprintln!(
        "sim-serve: job {} done: {} chunks resumed, {} computed \
         ({} trials in {:.2}s, {:.1} trials/s)",
        server::short(&report.job),
        report.resumed_chunks,
        report.computed_chunks,
        report.metrics.trials,
        report.metrics.trial_secs,
        report.metrics.trials_per_sec,
    );
    if metrics::enabled() {
        write_metrics_snapshot(&store, "submit.json");
    }
    println!("job {}", report.job);
    print_result(&report.result);
    Ok(())
}

/// Write the global registry to `<store>/metrics/<name>` (best effort:
/// a failed snapshot is a log line, never a failed job).
fn write_metrics_snapshot(store: &Path, name: &str) {
    let path = store.join("metrics").join(name);
    match metrics::global().write_snapshot(&path) {
        Ok(()) => eprintln!("sim-serve: metrics snapshot -> {}", path.display()),
        Err(e) => eprintln!("sim-serve: metrics snapshot {} failed: {e}", path.display()),
    }
}

/// Atomically drop a job spec into a queue directory.
fn enqueue(queue: &Path, spec: &JobSpec) -> Result<(), String> {
    std::fs::create_dir_all(queue).map_err(|e| format!("{}: {e}", queue.display()))?;
    let bytes = encode_record(spec);
    let tmp = queue.join(format!(".{}-{}.tmp", std::process::id(), spec.id()));
    let dest = queue.join(format!("{}.job", spec.id()));
    std::fs::write(&tmp, &bytes).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &dest).map_err(|e| format!("{}: {e}", dest.display()))?;
    Ok(())
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    flags.check_known(&[
        "--store",
        "--queue",
        "--worker-procs",
        "--poll-ms",
        "--metrics-every",
        "--no-metrics",
        "--once",
    ])?;
    let store = PathBuf::from(flags.require("--store")?);
    let queue = PathBuf::from(flags.require("--queue")?);
    let worker_procs: usize = flags.parse_num("--worker-procs", 0)?;
    let poll_ms: u64 = flags.parse_num("--poll-ms", 500)?;
    let metrics_every: u64 = flags.parse_num("--metrics-every", 20)?;
    let once = flags.has("--once");
    metrics::set_enabled(!flags.has("--no-metrics"));
    std::fs::create_dir_all(&queue).map_err(|e| format!("{}: {e}", queue.display()))?;
    eprintln!(
        "sim-serve: watching {} (store {}, poll {poll_ms} ms{})",
        queue.display(),
        store.display(),
        if once { ", single pass" } else { "" }
    );
    let mut passes: u64 = 0;
    loop {
        let stats = server::drain_queue(&store, &queue, worker_procs)?;
        if !stats.drained.is_empty() {
            let worst_ms = stats
                .drained
                .iter()
                .map(|d| d.latency_us)
                .max()
                .unwrap_or(0)
                / 1000;
            eprintln!(
                "sim-serve: pass drained {} job(s), worst submit-to-result {worst_ms} ms",
                stats.drained.len()
            );
        }
        passes += 1;
        // Snapshot after any pass that did work and periodically while
        // idle, so an observer (or a crash) is at most one pass stale.
        if metrics::enabled()
            && (!stats.drained.is_empty() || once || passes.is_multiple_of(metrics_every.max(1)))
        {
            write_metrics_snapshot(&store, "serve.json");
        }
        if once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms.max(50)));
    }
}

/// Render the job table `status` prints — one build per refresh so
/// `--watch` can clear and reprint an entire consistent frame.
fn status_body(store_dir: &str) -> Result<String, String> {
    let store = Store::open(store_dir).map_err(|e| e.to_string())?;
    let refs = store.refs("jobs/").map_err(|e| e.to_string())?;
    let mut jobs: Vec<String> = Vec::new();
    for (name, _) in &refs {
        let job = name.split('/').nth(1).unwrap_or_default().to_string();
        if !jobs.contains(&job) {
            jobs.push(job);
        }
    }
    let mut out = String::new();
    use std::fmt::Write as _;
    if jobs.is_empty() {
        out.push_str("no jobs\n");
        return Ok(out);
    }
    for hex in jobs {
        let Some(job) = ObjectId::from_hex(&hex) else {
            let _ = writeln!(out, "{hex}: not a job id");
            continue;
        };
        let spec = match store
            .get_ref(&sim_store::campaign::spec_ref(&job))
            .map_err(|e| e.to_string())?
        {
            Some(id) => {
                let bytes = store.get(&id).map_err(|e| e.to_string())?;
                Some(decode_record::<JobSpec>(&bytes).map_err(|e| e.to_string())?)
            }
            None => None,
        };
        let chunks = refs
            .iter()
            .filter(|(n, _)| n.starts_with(&format!("jobs/{hex}/chunks/")))
            .count();
        let planned = spec
            .as_ref()
            .map(|s| sim_store::plan_chunks(s.total_trials(), s.chunk_trials).len());
        let has_result = refs.iter().any(|(n, _)| n == &format!("jobs/{hex}/result"));
        let _ = writeln!(
            out,
            "{}  {:<24} {:>9}  chunks {}/{}",
            &hex[..12],
            spec.as_ref().map(|s| s.name.as_str()).unwrap_or("?"),
            if has_result { "complete" } else { "partial" },
            chunks,
            planned.map_or("?".to_string(), |n| n.to_string()),
        );
    }
    Ok(out)
}

fn cmd_status(flags: &Flags) -> Result<(), String> {
    flags.check_known(&["--store", "--watch", "--interval-ms"])?;
    let store_dir = flags.require("--store")?;
    if !flags.has("--watch") {
        print!("{}", status_body(store_dir)?);
        return Ok(());
    }
    let interval_ms: u64 = flags.parse_num("--interval-ms", 1000)?;
    loop {
        // A status error mid-watch is transient by construction (e.g. a
        // ref updated between listing and reading) — show it and retry.
        let frame = status_body(store_dir).unwrap_or_else(|e| format!("status: {e}\n"));
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
    }
}

fn cmd_result(flags: &Flags) -> Result<(), String> {
    flags.check_known(&["--store", "--job"])?;
    let store = Store::open(flags.require("--store")?).map_err(|e| e.to_string())?;
    let prefix = flags.require("--job")?;
    let refs = store.refs("jobs/").map_err(|e| e.to_string())?;
    let mut matches: Vec<&str> = refs
        .iter()
        .filter(|(n, _)| n.ends_with("/result"))
        .filter_map(|(n, _)| n.split('/').nth(1))
        .filter(|hex| hex.starts_with(prefix))
        .collect();
    matches.dedup();
    match matches.as_slice() {
        [] => Err(format!("no completed job matches '{prefix}'")),
        [hex] => {
            let job = ObjectId::from_hex(hex).ok_or("corrupt job id")?;
            let result = sim_store::load_result(&store, &job)
                .map_err(|e| e.to_string())?
                .ok_or("result vanished")?;
            println!("job {job}");
            print_result(&result);
            Ok(())
        }
        many => Err(format!(
            "'{prefix}' is ambiguous: {} jobs match",
            many.len()
        )),
    }
}

/// Print every metrics snapshot under `<store>/metrics/`. Snapshots are
/// plain JSON files outside the object namespace; this just finds and
/// dumps them with a header per file.
fn cmd_metrics(flags: &Flags) -> Result<(), String> {
    flags.check_known(&["--store"])?;
    let dir = PathBuf::from(flags.require("--store")?).join("metrics");
    let mut files: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(_) => Vec::new(),
    };
    files.sort();
    if files.is_empty() {
        println!(
            "no metrics snapshots under {} (run submit/serve without --no-metrics)",
            dir.display()
        );
        return Ok(());
    }
    // Snapshot dumps are exactly the output that gets piped into `head`
    // or `jq`; write through the io layer and treat a closed pipe as a
    // normal early exit instead of a println! panic.
    use std::io::Write as _;
    let mut out = std::io::stdout().lock();
    for f in &files {
        let body = std::fs::read_to_string(f).map_err(|e| format!("{}: {e}", f.display()))?;
        let newline = if body.ends_with('\n') { "" } else { "\n" };
        if write!(out, "-- {}\n{body}{newline}", f.display()).is_err() {
            return Ok(());
        }
    }
    Ok(())
}

fn cmd_gc(flags: &Flags) -> Result<(), String> {
    flags.check_known(&["--store"])?;
    let store = Store::open(flags.require("--store")?).map_err(|e| e.to_string())?;
    let report = store.gc().map_err(|e| e.to_string())?;
    println!(
        "gc: {} live objects kept, {} unreferenced objects removed, \
         {} tmp files removed, {} bytes reclaimed",
        report.live_objects, report.removed_objects, report.tmp_removed, report.reclaimed_bytes
    );
    Ok(())
}

fn cmd_fsck(flags: &Flags) -> Result<(), String> {
    flags.check_known(&["--store"])?;
    let store = Store::open(flags.require("--store")?).map_err(|e| e.to_string())?;
    let report = store.fsck().map_err(|e| e.to_string())?;
    println!(
        "fsck: {} objects ok, {} refs ok, {} errors",
        report.objects_ok,
        report.refs_ok,
        report.errors.len()
    );
    if report.is_clean() {
        Ok(())
    } else {
        for e in &report.errors {
            eprintln!("fsck: {e}");
        }
        Err("store is corrupt; fail closed (delete the damaged campaign and resubmit)".to_string())
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    let cmd = args.remove(0);
    let bare: &[&str] = &["--once", "--watch", "--no-metrics"];
    let run = || -> Result<(), String> {
        match cmd.as_str() {
            "worker" => server::worker_main(),
            "submit" => cmd_submit(&Flags::parse(args.clone(), bare)?),
            "serve" => cmd_serve(&Flags::parse(args.clone(), bare)?),
            "status" => cmd_status(&Flags::parse(args.clone(), bare)?),
            "result" => cmd_result(&Flags::parse(args.clone(), bare)?),
            "metrics" => cmd_metrics(&Flags::parse(args.clone(), bare)?),
            "gc" => cmd_gc(&Flags::parse(args.clone(), bare)?),
            "fsck" => cmd_fsck(&Flags::parse(args.clone(), bare)?),
            "soak" => soak::cmd_soak(&Flags::parse(args.clone(), bare)?),
            "--help" | "-h" | "help" => Err(usage()),
            other => Err(format!("unknown command '{other}'\n{}", usage())),
        }
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
