//! Parent <-> worker-process protocol: length-prefixed `sim-store`
//! records over stdin/stdout.
//!
//! Every frame is a `u32` little-endian byte count followed by one
//! framed, checksummed record (the same codec the store persists — tags
//! 100+ are transient protocol types that never reach disk). The
//! conversation:
//!
//! ```text
//! parent -> worker   JobSpec           (once, on startup)
//! worker -> parent   WorkerReady       (golden fingerprint; parent fails
//!                                       closed unless it matches its own)
//! parent -> worker   WorkerTask        (one chunk to run)    \  repeated
//! worker -> parent   WorkerChunk       (the completed chunk) /  per chunk
//! parent closes stdin -> worker exits 0
//! ```
//!
//! The worker never touches the store; only the parent — the single
//! canonical writer — persists chunks. A worker that dies mid-chunk
//! surfaces as a read error in the parent, which aborts the job rather
//! than publish a partial shard.

use sim_store::{
    decode_record, encode_record, ChunkPlan, ChunkRecord, Codec, Decoder, Encoder,
    GoldenFingerprint, WireError,
};
use std::io::{Read, Write};

/// Cap on a single protocol frame; anything larger is a corrupt length
/// prefix, not a real record.
pub const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Worker greeting: proof of which golden state it rebuilt.
#[derive(Debug, Clone)]
pub struct WorkerReady {
    /// Fingerprint of the campaign the worker prepared.
    pub fingerprint: GoldenFingerprint,
}

impl Codec for WorkerReady {
    const TAG: u16 = 100;
    const NAME: &'static str = "WorkerReady";

    fn encode_body(&self, e: &mut Encoder) {
        self.fingerprint.encode_body(e);
    }

    fn decode_body(d: &mut Decoder<'_>) -> Result<WorkerReady, WireError> {
        Ok(WorkerReady {
            fingerprint: GoldenFingerprint::decode_body(d)?,
        })
    }
}

/// One chunk assignment.
#[derive(Debug, Clone, Copy)]
pub struct WorkerTask {
    /// The chunk to run.
    pub plan: ChunkPlan,
}

impl Codec for WorkerTask {
    const TAG: u16 = 101;
    const NAME: &'static str = "WorkerTask";

    fn encode_body(&self, e: &mut Encoder) {
        e.put_usize(self.plan.index);
        e.put_usize(self.plan.start);
        e.put_usize(self.plan.len);
    }

    fn decode_body(d: &mut Decoder<'_>) -> Result<WorkerTask, WireError> {
        Ok(WorkerTask {
            plan: ChunkPlan {
                index: d.get_usize()?,
                start: d.get_usize()?,
                len: d.get_usize()?,
            },
        })
    }
}

/// One completed chunk, travelling back to the parent.
#[derive(Debug, Clone)]
pub struct WorkerChunk {
    /// The chunk, exactly as the parent will persist it.
    pub chunk: ChunkRecord,
}

impl Codec for WorkerChunk {
    const TAG: u16 = 102;
    const NAME: &'static str = "WorkerChunk";

    fn encode_body(&self, e: &mut Encoder) {
        self.chunk.encode_body(e);
    }

    fn decode_body(d: &mut Decoder<'_>) -> Result<WorkerChunk, WireError> {
        Ok(WorkerChunk {
            chunk: ChunkRecord::decode_body(d)?,
        })
    }
}

/// Write one framed record.
pub fn write_frame<T: Codec, W: Write>(w: &mut W, value: &T) -> std::io::Result<()> {
    let bytes = encode_record(value);
    let len = u32::try_from(bytes.len()).expect("frame < 4 GiB");
    assert!(len <= MAX_FRAME, "{} frame of {len} bytes", T::NAME);
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&bytes)?;
    w.flush()
}

/// Read one framed record of type `T`. `Ok(None)` on clean EOF at a frame
/// boundary; any mid-frame truncation or decode failure is an error.
pub fn read_frame<T: Codec, R: Read>(r: &mut R) -> std::io::Result<Option<T>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::other(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut bytes = vec![0u8; len as usize];
    r.read_exact(&mut bytes)?;
    decode_record::<T>(&bytes)
        .map(Some)
        .map_err(|e| std::io::Error::other(format!("{} frame: {e}", T::NAME)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let task = WorkerTask {
            plan: ChunkPlan {
                index: 3,
                start: 96,
                len: 32,
            },
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &task).unwrap();
        let mut r = &buf[..];
        let got: WorkerTask = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(got.plan, task.plan);
        assert!(read_frame::<WorkerTask, _>(&mut r).unwrap().is_none());
        // Mid-frame truncation is an error, not EOF.
        let mut r = &buf[..buf.len() - 1];
        assert!(read_frame::<WorkerTask, _>(&mut r).is_err());
    }
}
