//! `sim-serve soak` — the SLO-enforced soak harness (DESIGN.md §5k).
//!
//! One soak run drives the whole serving stack the way an unlucky day
//! would: many concurrent quick-scale jobs, a subset of submissions
//! killed mid-write by the deterministic crash hook
//! (`SIM_STORE_CRASH_AFTER_CHUNKS`), then a queue drain that must resume
//! every crashed job and finish all of them. Afterwards the harness
//! fails closed on four SLOs:
//!
//! 1. every queued job parked as `.done` (no failures, no rejects);
//! 2. p99 submit→result latency under `--slo-p99-ms`;
//! 3. every crashed job's resume (dispatch→result) under
//!    `--slo-resume-ms`;
//! 4. zero byte-level divergence between the soak store and a serial
//!    control store that never crashed — and `gc` + `fsck` afterwards
//!    must reclaim only garbage and leave the store clean.
//!
//! The metrics-overhead SLO (≤5% throughput cost with metrics on) lives
//! in perfbench's `service` section, not here: soak asserts behavior,
//! perfbench asserts cost.

use crate::server;
use crate::Flags;
use sim_store::{GcReport, JobSpec, ObjectId, Store};
use sim_trace::metrics;
use smt_avf::experiments::campaign::default_campaign;
use smt_avf::ExperimentScale;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Build the i-th soak job spec — byte-for-byte the spec that
/// `sim-serve submit --workload W --trials T --seed S+i --targets L
/// --chunk C --scale quick` builds, so the crash legs (which go through
/// `submit` in a child process) and the queue legs share job identities.
fn soak_spec(
    workload_name: &str,
    trials: usize,
    seed: u64,
    targets: &[sim_inject::FaultTarget],
    chunk: usize,
) -> Result<JobSpec, String> {
    let workload = server::resolve_workload(workload_name)?;
    let mut cfg = default_campaign(&workload, trials, seed, ExperimentScale::quick());
    cfg.checkpoints = cfg.checkpoints.max(1);
    cfg.targets = targets.to_vec();
    Ok(JobSpec {
        name: format!("{workload_name}-t{trials}-s{seed}"),
        workload: workload_name.to_string(),
        cfg,
        chunk_trials: chunk,
    })
}

/// Recursively collect `root/<sub>` for each `sub` as a sorted
/// relative-path → contents map. Only the listed subtrees are read, so
/// LOCK files and `tmp/`/`metrics/` leftovers never enter a comparison.
fn tree_bytes(root: &Path, subs: &[&str]) -> Result<BTreeMap<String, Vec<u8>>, String> {
    let mut out = BTreeMap::new();
    for sub in subs {
        let top = root.join(sub);
        if !top.exists() {
            continue;
        }
        let mut stack = vec![top];
        while let Some(dir) = stack.pop() {
            for entry in std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))? {
                let path = entry.map_err(|e| e.to_string())?.path();
                if path.is_dir() {
                    stack.push(path);
                } else {
                    let rel = path
                        .strip_prefix(root)
                        .expect("walked under root")
                        .to_string_lossy()
                        .replace('\\', "/");
                    let bytes =
                        std::fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
                    out.insert(rel, bytes);
                }
            }
        }
    }
    Ok(out)
}

/// First difference between two tree snapshots, as a human-readable
/// line, or `None` when they are byte-identical.
fn first_divergence(
    a: &BTreeMap<String, Vec<u8>>,
    b: &BTreeMap<String, Vec<u8>>,
) -> Option<String> {
    for (path, bytes) in a {
        match b.get(path) {
            None => return Some(format!("{path}: only in control store")),
            Some(other) if other != bytes => return Some(format!("{path}: contents differ")),
            Some(_) => {}
        }
    }
    b.keys()
        .find(|p| !a.contains_key(*p))
        .map(|p| format!("{p}: only in soak store"))
}

/// Run one crash leg: a `submit` child process with the crash hook armed,
/// which must die (abort) after publishing its first chunk.
fn crash_leg(
    store: &Path,
    workload: &str,
    trials: usize,
    seed: u64,
    targets_flag: &str,
    chunk: usize,
) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let status = std::process::Command::new(&exe)
        .args([
            "submit",
            "--store",
            &store.display().to_string(),
            "--workload",
            workload,
            "--trials",
            &trials.to_string(),
            "--seed",
            &seed.to_string(),
            "--targets",
            targets_flag,
            "--chunk",
            &chunk.to_string(),
            "--scale",
            "quick",
        ])
        .env("SIM_STORE_CRASH_AFTER_CHUNKS", "1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .map_err(|e| format!("spawning crash leg: {e}"))?;
    if status.success() {
        return Err(format!(
            "crash leg for seed {seed} exited cleanly; the crash hook did not fire"
        ));
    }
    Ok(())
}

pub fn cmd_soak(flags: &Flags) -> Result<(), String> {
    flags.check_known(&[
        "--dir",
        "--jobs",
        "--crash-jobs",
        "--worker-procs",
        "--trials",
        "--seed",
        "--chunk",
        "--workload",
        "--targets",
        "--slo-p99-ms",
        "--slo-resume-ms",
        "--report",
        "--no-metrics",
    ])?;
    let dir = PathBuf::from(flags.require("--dir")?);
    let jobs: usize = flags.parse_num("--jobs", 6)?;
    let crash_jobs: usize = flags.parse_num("--crash-jobs", 2)?.min(jobs);
    let worker_procs: usize = flags.parse_num("--worker-procs", 2)?;
    let trials: usize = flags.parse_num("--trials", 4)?;
    let seed: u64 = flags.parse_num("--seed", 100)?;
    let chunk: usize = flags.parse_num("--chunk", 2)?;
    let workload = flags.get("--workload").unwrap_or("2T-MIX-A").to_string();
    let targets_flag = flags.get("--targets").unwrap_or("iq,regfile").to_string();
    let slo_p99_ms: u64 = flags.parse_num("--slo-p99-ms", 600_000)?;
    let slo_resume_ms: u64 = flags.parse_num("--slo-resume-ms", 300_000)?;
    let report_path = flags
        .get("--report")
        .map(PathBuf::from)
        .unwrap_or_else(|| dir.join("soak-report.json"));
    if jobs == 0 {
        return Err("--jobs must be positive".to_string());
    }
    let targets = targets_flag
        .split(',')
        .map(crate::parse_target)
        .collect::<Result<Vec<_>, _>>()?;

    let control_dir = dir.join("control");
    let soak_dir = dir.join("soak");
    let queue_dir = dir.join("queue");
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;

    let mut specs = Vec::with_capacity(jobs);
    for i in 0..jobs {
        specs.push(soak_spec(
            &workload,
            trials,
            seed + i as u64,
            &targets,
            chunk,
        )?);
    }

    // Phase 1: serial control — same specs, pristine store, no crashes,
    // metrics off so the soak registry only measures the soak store.
    eprintln!("soak: control run ({jobs} jobs, serial, in-process)");
    metrics::set_enabled(false);
    let t_control = Instant::now();
    for spec in &specs {
        server::run_job(&control_dir, spec, 0)?;
    }
    let control_secs = t_control.elapsed().as_secs_f64();

    // Phase 2: crash legs — the first K submissions die mid-campaign
    // after publishing one chunk, leaving partial state (and tmp/LOCK
    // debris) in the soak store for the drain to resume over.
    eprintln!("soak: crashing {crash_jobs} submissions mid-write");
    let mut crashed_ids: Vec<ObjectId> = Vec::new();
    for (i, spec) in specs.iter().take(crash_jobs).enumerate() {
        crash_leg(
            &soak_dir,
            &workload,
            trials,
            seed + i as u64,
            &targets_flag,
            chunk,
        )?;
        crashed_ids.push(spec.id());
    }

    // Phase 3: enqueue everything and drain with metrics on — the same
    // path `sim-serve serve --once` takes.
    eprintln!("soak: draining {jobs} queued jobs ({worker_procs} worker procs)");
    for spec in &specs {
        crate::enqueue(&queue_dir, spec)?;
    }
    metrics::set_enabled(!flags.has("--no-metrics"));
    let t_drain = Instant::now();
    let stats = server::drain_queue(&soak_dir, &queue_dir, worker_procs)?;
    let drain_secs = t_drain.elapsed().as_secs_f64();

    let mut violations: Vec<String> = Vec::new();
    let done = stats
        .drained
        .iter()
        .filter(|d| d.disposition == "done")
        .count();
    if stats.drained.len() != jobs || done != jobs {
        violations.push(format!(
            "dispositions: {done}/{} done of {jobs} queued",
            stats.drained.len()
        ));
    }

    // SLO: p99 submit→result latency, read back from the same histogram
    // the serve loop publishes (conservative bucket-upper-bound p99).
    let p99_ms = metrics::global()
        .histogram("serve.submit_to_result_us")
        .quantile(0.99)
        / 1000;
    if p99_ms > slo_p99_ms {
        violations.push(format!(
            "p99 submit-to-result {p99_ms} ms exceeds SLO {slo_p99_ms} ms"
        ));
    }

    // SLO: crashed jobs must resume within the resume ceiling.
    let mut max_resume_ms = 0u64;
    for id in &crashed_ids {
        match stats.drained.iter().find(|d| d.job.as_ref() == Some(id)) {
            Some(d) => max_resume_ms = max_resume_ms.max(d.service_us / 1000),
            None => violations.push(format!("crashed job {} never drained", server::short(id))),
        }
    }
    if max_resume_ms > slo_resume_ms {
        violations.push(format!(
            "max resume {max_resume_ms} ms exceeds SLO {slo_resume_ms} ms"
        ));
    }

    // SLO: the crash-and-resume store must be byte-identical to the
    // serial control store over everything that carries meaning
    // (objects/ and refs/; LOCK and tmp debris are outside the contract).
    let control_tree = tree_bytes(&control_dir, &["objects", "refs"])?;
    let soak_tree = tree_bytes(&soak_dir, &["objects", "refs"])?;
    let divergence = first_divergence(&control_tree, &soak_tree);
    let byte_identical = divergence.is_none();
    if let Some(d) = divergence {
        violations.push(format!("soak store diverged from control: {d}"));
    }

    // GC the soak store: crash debris goes away, no reachable byte moves,
    // and fsck stays clean.
    let store = Store::open(&soak_dir).map_err(|e| e.to_string())?;
    let gc: GcReport = store.gc().map_err(|e| e.to_string())?;
    let post_gc_tree = tree_bytes(&soak_dir, &["objects", "refs"])?;
    let post_gc_identical = post_gc_tree == soak_tree;
    if !post_gc_identical {
        violations.push("gc changed reachable bytes".to_string());
    }
    let fsck = store.fsck().map_err(|e| e.to_string())?;
    if !fsck.is_clean() {
        violations.push(format!("fsck after gc: {} errors", fsck.errors.len()));
    }

    let pass = violations.is_empty();
    let report = format!(
        "{{\n  \"schema\": \"smt-avf/soak/v1\",\n  \"jobs\": {jobs},\n  \
         \"crash_jobs\": {crash_jobs},\n  \"worker_procs\": {worker_procs},\n  \
         \"trials\": {trials},\n  \"chunk\": {chunk},\n  \
         \"control_secs\": {control_secs:.3},\n  \"drain_secs\": {drain_secs:.3},\n  \
         \"p99_submit_to_result_ms\": {p99_ms},\n  \"max_resume_ms\": {max_resume_ms},\n  \
         \"slo_p99_ms\": {slo_p99_ms},\n  \"slo_resume_ms\": {slo_resume_ms},\n  \
         \"jobs_done\": {done},\n  \"byte_identical\": {byte_identical},\n  \
         \"gc_removed_objects\": {},\n  \"gc_tmp_removed\": {},\n  \
         \"gc_reclaimed_bytes\": {},\n  \"post_gc_identical\": {post_gc_identical},\n  \
         \"fsck_clean\": {},\n  \"pass\": {pass}\n}}\n",
        gc.removed_objects,
        gc.tmp_removed,
        gc.reclaimed_bytes,
        fsck.is_clean(),
    );
    if let Some(parent) = report_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&report_path, &report).map_err(|e| format!("{}: {e}", report_path.display()))?;
    if metrics::enabled() {
        let snap = soak_dir.join("metrics").join("soak.json");
        if let Err(e) = metrics::global().write_snapshot(&snap) {
            eprintln!("soak: metrics snapshot failed: {e}");
        }
    }
    print!("{report}");
    eprintln!("soak: report -> {}", report_path.display());

    if pass {
        eprintln!(
            "soak: PASS ({jobs} jobs, {crash_jobs} crashes resumed, \
             p99 {p99_ms} ms, max resume {max_resume_ms} ms)"
        );
        Ok(())
    } else {
        Err(format!(
            "soak: FAIL — {} SLO violation(s):\n  {}",
            violations.len(),
            violations.join("\n  ")
        ))
    }
}
