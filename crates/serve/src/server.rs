//! Job execution: resolve a [`JobSpec`] into a prepared campaign, shard
//! its chunks across worker processes (or run them in-process), persist
//! every completed chunk, and publish the final result.
//!
//! The parent process is the store's single canonical writer: workers
//! never touch disk, they stream completed chunks back over the
//! [`protocol`](crate::protocol) and the parent publishes them. Killing
//! the parent (or any worker) at any point loses at most the in-flight
//! chunks; a rerun of the same spec resumes from the published ones and
//! finishes with byte-identical results.

use crate::protocol::{read_frame, write_frame, WorkerChunk, WorkerReady, WorkerTask};
use avf_core::AvfReport;
use sim_inject::{CampaignMetrics, Landing, PreparedCampaign};
use sim_model::{FetchPolicyKind, MachineConfig};
use sim_pipeline::SmtCore;
use sim_store::{
    assemble_result, decode_record, encode_record, load_chunk, load_result, maybe_crash_after,
    plan_chunks, prepare_stored, run_chunk, store_chunk, ChunkPlan, ChunkRecord, GoldenFingerprint,
    JobResultRecord, JobSpec, ObjectId, Store, StoredOutcome,
};
use sim_trace::metrics::{self, micros_since};
use sim_workload::{table2, SmtWorkload, TraceGenerator};
use smt_avf::runner::{run_workload_on, workload_generators};
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Look up a Table 2 workload by name.
pub fn resolve_workload(name: &str) -> Result<SmtWorkload, String> {
    table2()
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| {
            format!(
                "unknown workload '{name}'; Table 2 defines: {}",
                table2()
                    .iter()
                    .map(|w| w.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
}

/// The machine every campaign job runs on: the Table 1 baseline under
/// ICOUNT, sized for the workload — the same configuration the ACE
/// experiments and `validate_avf` use, so stored results are comparable.
pub fn machine_for(workload: &SmtWorkload) -> MachineConfig {
    MachineConfig::ispass07_baseline()
        .with_contexts(workload.contexts)
        .with_fetch_policy(FetchPolicyKind::Icount)
}

/// Build the deterministic core factory for `workload` (profiles resolved
/// up front so the returned closure cannot fail).
pub fn factory_for(
    workload: &SmtWorkload,
) -> Result<impl Fn() -> SmtCore<TraceGenerator> + Sync + '_, String> {
    workload_generators(workload).map_err(|e| e.to_string())?;
    let cfg = machine_for(workload);
    Ok(move || {
        SmtCore::new(
            cfg.clone(),
            workload_generators(workload).expect("profiles resolved above"),
        )
    })
}

/// How a finished job is reported.
pub struct JobReport {
    /// The job's identity.
    pub job: ObjectId,
    /// The published result.
    pub result: JobResultRecord,
    /// Chunks loaded from a previous run vs computed now.
    pub resumed_chunks: usize,
    /// Chunks computed by this run.
    pub computed_chunks: usize,
    /// Execution metrics for the chunks computed by this run.
    pub metrics: CampaignMetrics,
}

/// Run `spec` to completion against the store at `store_dir`, sharding
/// across `worker_procs` spawned worker processes (0 or 1 = in-process).
/// Idempotent and resumable: published chunks are never recomputed.
pub fn run_job(store_dir: &Path, spec: &JobSpec, worker_procs: usize) -> Result<JobReport, String> {
    let store = Store::open(store_dir).map_err(|e| e.to_string())?;
    let workload = resolve_workload(&spec.workload)?;
    let started = Instant::now();
    let outcome = if worker_procs <= 1 {
        run_in_process(&store, spec, &workload)?
    } else {
        run_sharded(&store, spec, &workload, worker_procs)?
    };
    let elapsed = started.elapsed().as_secs_f64();
    let trials = outcome.result.records.len() as u64;
    let computed_trials = (outcome.computed_chunks as u64)
        .saturating_mul(spec.chunk_trials.max(1) as u64)
        .min(trials);
    let injected = outcome
        .result
        .records
        .iter()
        .filter(|r| r.landing == Landing::Injected)
        .count() as u64;
    let metrics = CampaignMetrics {
        trials: computed_trials,
        golden_secs: 0.0,
        trial_secs: elapsed,
        trials_per_sec: if elapsed > 0.0 {
            computed_trials as f64 / elapsed
        } else {
            0.0
        },
        workers: worker_procs.max(1),
        per_worker_jobs: Vec::new(),
        injected_trials: injected,
        early_exits: 0,
        restore: None,
        lane_stats: None,
    };
    if metrics::enabled() {
        let reg = metrics::global();
        reg.counter("serve.jobs").inc();
        reg.counter("serve.chunks_resumed")
            .add(outcome.resumed_chunks as u64);
        reg.counter("serve.chunks_computed")
            .add(outcome.computed_chunks as u64);
        reg.histogram("serve.job_us")
            .observe((elapsed * 1e6) as u64);
        metrics.export(reg, "campaign");
    }
    Ok(JobReport {
        job: spec.id(),
        result: outcome.result,
        resumed_chunks: outcome.resumed_chunks,
        computed_chunks: outcome.computed_chunks,
        metrics,
    })
}

/// The ACE reference closure for `spec`: the uninjected run whose report
/// is published with the job result.
fn ace_for<'a>(
    workload: &'a SmtWorkload,
    spec: &'a JobSpec,
) -> impl FnOnce() -> Result<AvfReport, String> + 'a {
    move || {
        run_workload_on(&machine_for(workload), workload, spec.cfg.budget)
            .map(|r| r.report)
            .map_err(|e| e.to_string())
    }
}

fn run_in_process(
    store: &Store,
    spec: &JobSpec,
    workload: &SmtWorkload,
) -> Result<StoredOutcome, String> {
    let factory = factory_for(workload)?;
    sim_store::run_campaign_stored(store, spec, &factory, ace_for(workload, spec))
        .map_err(|e| e.to_string())
}

/// One spawned worker process and its protocol streams.
struct Worker {
    child: Child,
    stdin: BufWriter<std::process::ChildStdin>,
    stdout: BufReader<std::process::ChildStdout>,
}

fn spawn_worker(spec: &JobSpec) -> Result<Worker, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = Command::new(&exe)
        .arg("worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        // Workers must not see the parent's crash hook: the hook models
        // killing the *writer*, and only the parent writes.
        .env_remove("SIM_STORE_CRASH_AFTER_CHUNKS")
        .spawn()
        .map_err(|e| format!("spawning {}: {e}", exe.display()))?;
    if metrics::enabled() {
        metrics::global().counter("serve.worker.spawns").inc();
    }
    let mut stdin = BufWriter::new(child.stdin.take().expect("piped"));
    let stdout = BufReader::new(child.stdout.take().expect("piped"));
    write_frame(&mut stdin, spec).map_err(|e| format!("sending spec to worker: {e}"))?;
    Ok(Worker {
        child,
        stdin,
        stdout,
    })
}

fn run_sharded(
    store: &Store,
    spec: &JobSpec,
    workload: &SmtWorkload,
    worker_procs: usize,
) -> Result<StoredOutcome, String> {
    let job = spec.id();
    if let Some(done) = load_result(store, &job).map_err(|e| e.to_string())? {
        return Ok(StoredOutcome {
            result: done,
            resumed_chunks: plan_chunks(spec.total_trials(), spec.chunk_trials).len(),
            computed_chunks: 0,
        });
    }
    let _lock = store.lock().map_err(|e| e.to_string())?;
    if let Some(done) = load_result(store, &job).map_err(|e| e.to_string())? {
        return Ok(StoredOutcome {
            result: done,
            resumed_chunks: plan_chunks(spec.total_trials(), spec.chunk_trials).len(),
            computed_chunks: 0,
        });
    }

    // The parent prepares its own golden: it owns fingerprint
    // verification against the store and must not trust workers for it.
    let factory = factory_for(workload)?;
    let (job, prepared): (ObjectId, PreparedCampaign<TraceGenerator>) =
        prepare_stored(store, spec, &factory).map_err(|e| e.to_string())?;
    let expected = encode_record(&GoldenFingerprint::of(&prepared));

    let plans = plan_chunks(prepared.total_trials(), spec.chunk_trials);
    let mut missing = VecDeque::new();
    let mut resumed = 0usize;
    for &plan in &plans {
        match load_chunk(store, &job, plan).map_err(|e| e.to_string())? {
            Some(_) => resumed += 1,
            None => missing.push_back(plan),
        }
    }

    let total = plans.len();
    let procs = worker_procs.min(missing.len().max(1));
    let queue: Mutex<VecDeque<ChunkPlan>> = Mutex::new(missing);
    let done = AtomicUsize::new(resumed);
    let computed = AtomicUsize::new(0);

    let mut workers = Vec::with_capacity(procs);
    for _ in 0..procs {
        workers.push(spawn_worker(spec)?);
    }

    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::with_capacity(workers.len());
        for (wi, mut worker) in workers.into_iter().enumerate() {
            let queue = &queue;
            let done = &done;
            let computed = &computed;
            let expected = &expected;
            handles.push(scope.spawn(move || -> Result<(), String> {
                let ready: WorkerReady = read_frame(&mut worker.stdout)
                    .map_err(|e| format!("worker {wi}: {e}"))?
                    .ok_or_else(|| format!("worker {wi} exited before greeting"))?;
                if encode_record(&ready.fingerprint) != *expected {
                    return Err(format!(
                        "worker {wi} rebuilt a different golden state than the parent; \
                         refusing to shard across divergent machines"
                    ));
                }
                let timed = metrics::enabled();
                loop {
                    let plan = match queue.lock().expect("queue lock").pop_front() {
                        Some(p) => p,
                        None => break,
                    };
                    let t_chunk = timed.then(Instant::now);
                    write_frame(&mut worker.stdin, &WorkerTask { plan })
                        .map_err(|e| format!("worker {wi}: {e}"))?;
                    let reply: WorkerChunk = read_frame(&mut worker.stdout)
                        .map_err(|e| format!("worker {wi}: {e}"))?
                        .ok_or_else(|| format!("worker {wi} died running chunk {}", plan.index))?;
                    if let Some(t) = t_chunk {
                        // Dispatch→reply wall time is this worker's busy
                        // window: the parent thread does nothing else
                        // between the frames.
                        let us = micros_since(t);
                        let reg = metrics::global();
                        reg.histogram("serve.worker.chunk_us").observe(us);
                        reg.counter(&format!("serve.worker{wi}.busy_us")).add(us);
                        reg.counter(&format!("serve.worker{wi}.frames")).add(2);
                    }
                    let chunk = reply.chunk;
                    if chunk.job != job
                        || chunk.index != plan.index
                        || chunk.start != plan.start
                        || chunk.records.len() != plan.len
                    {
                        return Err(format!(
                            "worker {wi} returned chunk {} for the wrong slot",
                            chunk.index
                        ));
                    }
                    store_chunk(store, &chunk).map_err(|e| e.to_string())?;
                    let so_far = done.fetch_add(1, Ordering::Relaxed) + 1;
                    eprintln!(
                        "sim-serve: job {} chunk {} published ({so_far}/{total})",
                        short(&job),
                        plan.index
                    );
                    maybe_crash_after(computed.fetch_add(1, Ordering::Relaxed) + 1);
                }
                // Closing stdin is the shutdown signal.
                drop(worker.stdin);
                let status = worker
                    .child
                    .wait()
                    .map_err(|e| format!("worker {wi}: {e}"))?;
                if !status.success() {
                    return Err(format!("worker {wi} exited with {status}"));
                }
                Ok(())
            }));
        }
        let mut first_err = None;
        for h in handles {
            if let Err(e) = h.join().expect("worker thread panicked") {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })?;

    // Reload every chunk from the store — assembly runs over published
    // bytes, not in-memory copies, so what we summarize is what survived.
    let mut chunks: Vec<ChunkRecord> = Vec::with_capacity(plans.len());
    for &plan in &plans {
        match load_chunk(store, &job, plan).map_err(|e| e.to_string())? {
            Some(c) => chunks.push(c),
            None => return Err(format!("chunk {} missing after shard run", plan.index)),
        }
    }
    let result = assemble_result(store, &job, spec, chunks, ace_for(workload, spec))
        .map_err(|e| e.to_string())?;
    Ok(StoredOutcome {
        result,
        resumed_chunks: resumed,
        computed_chunks: computed.load(Ordering::Relaxed),
    })
}

/// Worker-process entry point: speak the protocol on stdin/stdout until
/// the parent closes stdin. Never touches the store.
pub fn worker_main() -> Result<(), String> {
    let mut stdin = BufReader::new(std::io::stdin());
    let mut stdout = BufWriter::new(std::io::stdout());
    let spec: JobSpec = read_frame(&mut stdin)
        .map_err(|e| format!("reading job spec: {e}"))?
        .ok_or("parent closed the pipe before sending a job spec")?;
    let workload = resolve_workload(&spec.workload)?;
    let factory = factory_for(&workload)?;
    let prepared = PreparedCampaign::prepare(&factory, &spec.cfg).map_err(|e| e.to_string())?;
    let job = spec.id();
    write_frame(
        &mut stdout,
        &WorkerReady {
            fingerprint: GoldenFingerprint::of(&prepared),
        },
    )
    .map_err(|e| format!("sending greeting: {e}"))?;
    while let Some(task) =
        read_frame::<WorkerTask, _>(&mut stdin).map_err(|e| format!("reading task: {e}"))?
    {
        let records = run_chunk(&prepared, &factory, task.plan, spec.cfg.workers);
        write_frame(
            &mut stdout,
            &WorkerChunk {
                chunk: ChunkRecord {
                    job,
                    index: task.plan.index,
                    start: task.plan.start,
                    records,
                },
            },
        )
        .map_err(|e| format!("sending chunk {}: {e}", task.plan.index))?;
    }
    Ok(())
}

/// One job processed by a [`drain_queue`] pass.
pub struct DrainedJob {
    /// The job's identity (`None` when the queue file did not decode).
    pub job: Option<ObjectId>,
    /// Where the queue file was parked: `"done"`, `"failed"`, `"rejected"`.
    pub disposition: &'static str,
    /// Submit (queue-file mtime) → parked, in microseconds.
    pub latency_us: u64,
    /// Dispatch (decode start) → parked, in microseconds.
    pub service_us: u64,
}

/// What one queue pass did.
pub struct DrainStats {
    /// Jobs parked by this pass, in dispatch order.
    pub drained: Vec<DrainedJob>,
}

/// Run one pass over `queue`: every `*.job` file (sorted, so dispatch
/// order is deterministic) is decoded, executed against the store, and
/// parked as `.done` / `.failed` / `.rejected`. This is the single
/// drain path shared by `sim-serve serve` and the soak harness, and the
/// place submit→dispatch→result latencies are observed: submit time is
/// the queue file's mtime (stamped by the atomic rename in `enqueue`),
/// so the latency survives across serve restarts.
pub fn drain_queue(
    store_dir: &Path,
    queue: &Path,
    worker_procs: usize,
) -> Result<DrainStats, String> {
    let timed = metrics::enabled();
    let mut jobs: Vec<PathBuf> = std::fs::read_dir(queue)
        .map_err(|e| format!("{}: {e}", queue.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "job"))
        .collect();
    jobs.sort();
    if timed {
        metrics::global()
            .gauge("serve.queue_depth")
            .set(jobs.len() as i64);
    }
    let mut drained = Vec::new();
    for path in &jobs {
        let submitted = std::fs::metadata(path).and_then(|m| m.modified()).ok();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("sim-serve: skipping {}: {e}", path.display());
                continue;
            }
        };
        let dispatched = Instant::now();
        if timed {
            let wait_us = submitted
                .and_then(|t| t.elapsed().ok())
                .map_or(0, |d| d.as_micros().min(u64::MAX as u128) as u64);
            metrics::global()
                .histogram("serve.submit_to_dispatch_us")
                .observe(wait_us);
        }
        let (job, disposition) = match decode_record::<JobSpec>(&bytes) {
            Err(e) => {
                eprintln!("sim-serve: rejecting {}: {e}", path.display());
                (None, "rejected")
            }
            Ok(spec) => {
                eprintln!(
                    "sim-serve: running job {} ({})",
                    short(&spec.id()),
                    spec.name
                );
                match run_job(store_dir, &spec, worker_procs) {
                    Ok(report) => {
                        eprintln!(
                            "sim-serve: job {} done ({} resumed, {} computed)",
                            short(&report.job),
                            report.resumed_chunks,
                            report.computed_chunks
                        );
                        (Some(report.job), "done")
                    }
                    Err(e) => {
                        eprintln!("sim-serve: job failed: {e}");
                        (Some(spec.id()), "failed")
                    }
                }
            }
        };
        let parked = path.with_extension(disposition);
        if let Err(e) = std::fs::rename(path, &parked) {
            return Err(format!("parking {}: {e}", path.display()));
        }
        let service_us = micros_since(dispatched);
        let latency_us = submitted
            .and_then(|t| t.elapsed().ok())
            .map_or(service_us, |d| d.as_micros().min(u64::MAX as u128) as u64);
        if timed {
            let reg = metrics::global();
            reg.histogram("serve.submit_to_result_us")
                .observe(latency_us);
            reg.histogram("serve.service_us").observe(service_us);
            reg.counter(&format!("serve.jobs_{disposition}")).inc();
            reg.gauge("serve.queue_depth").add(-1);
        }
        drained.push(DrainedJob {
            job,
            disposition,
            latency_us,
            service_us,
        });
    }
    Ok(DrainStats { drained })
}

/// Abbreviated job id for log lines.
pub fn short(id: &ObjectId) -> String {
    id.to_hex()[..12].to_string()
}
